#include "src/race/detector.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "src/common/bitmap.h"
#include "src/common/check.h"

namespace cvm {

void DetectorStats::Accumulate(const DetectorStats& other) {
  intervals_total += other.intervals_total;
  interval_comparisons += other.interval_comparisons;
  concurrent_pairs += other.concurrent_pairs;
  overlapping_pairs += other.overlapping_pairs;
  intervals_in_overlap += other.intervals_in_overlap;
  checklist_entries += other.checklist_entries;
  page_overlap_probes += other.page_overlap_probes;
  bitmap_pairs_compared += other.bitmap_pairs_compared;
  overlap_scratch_builds += other.overlap_scratch_builds;
}

namespace {

// Pages written by one interval and accessed (either way) by the other.
void CollectConflictPages(const std::vector<PageId>& writes, const std::vector<PageId>& reads,
                          const std::vector<PageId>& other_writes,
                          const std::vector<PageId>& other_reads, std::vector<PageId>* out,
                          uint64_t* probes) {
  for (PageId w : writes) {
    *probes += other_writes.size() + other_reads.size();
    const bool hit = std::find(other_writes.begin(), other_writes.end(), w) != other_writes.end() ||
                     std::find(other_reads.begin(), other_reads.end(), w) != other_reads.end();
    if (hit) {
      out->push_back(w);
    }
  }
  // Reads of this interval against writes of the other.
  for (PageId r : reads) {
    *probes += other_writes.size();
    if (std::find(other_writes.begin(), other_writes.end(), r) != other_writes.end()) {
      out->push_back(r);
    }
  }
}

// True (and fills scratch->overlap) if the two intervals share any page with
// at least one writer. Free of detector state so check-list shards can probe
// concurrently, each into its own DetectorStats and OverlapScratch.
bool PagesOverlap(OverlapMethod method, int num_pages, const IntervalRecord& a,
                  const IntervalRecord& b, OverlapScratch* scratch, DetectorStats* stats) {
  std::vector<PageId>* overlap = &scratch->overlap;
  overlap->clear();
  if (method == OverlapMethod::kPageLists) {
    CollectConflictPages(a.write_pages, a.read_pages, b.write_pages, b.read_pages, overlap,
                         &stats->page_overlap_probes);
  } else {
    // Dense page bitmaps: O(pages) regardless of list length (§6.2).
    // conflict = (a.writes & b.access) | (b.writes & a.access). The bitmaps
    // live in the per-shard scratch, zero-filled (not reallocated) per pair.
    scratch->Prepare(num_pages, stats);
    for (PageId p : a.write_pages) {
      scratch->a_writes.Set(static_cast<uint32_t>(p));
      scratch->a_access.Set(static_cast<uint32_t>(p));
    }
    for (PageId p : a.read_pages) {
      scratch->a_access.Set(static_cast<uint32_t>(p));
    }
    for (PageId p : b.write_pages) {
      scratch->b_writes.Set(static_cast<uint32_t>(p));
      scratch->b_access.Set(static_cast<uint32_t>(p));
    }
    for (PageId p : b.read_pages) {
      scratch->b_access.Set(static_cast<uint32_t>(p));
    }
    stats->page_overlap_probes += static_cast<uint64_t>(num_pages);
    scratch->conflict = scratch->a_writes;  // Same size: reuses capacity.
    scratch->conflict.IntersectWith(scratch->b_access);
    scratch->b_writes.IntersectWith(scratch->a_access);
    scratch->conflict.UnionWith(scratch->b_writes);
    for (uint32_t p : scratch->conflict.SetBits()) {
      overlap->push_back(static_cast<PageId>(p));
    }
  }
  // Deduplicate (a page can enter via both W/W and R/W probes).
  std::sort(overlap->begin(), overlap->end());
  overlap->erase(std::unique(overlap->begin(), overlap->end()), overlap->end());
  return !overlap->empty();
}

// The inner pair loop for the rows of the triangle assigned to one shard:
// row i is compared against every j > i. Emits row i's pairs into rows[i]
// (in ascending-j order, as the serial loop would emit them), overwriting
// pooled slots from earlier epochs in place where possible.
void BuildRowsForShard(const std::vector<IntervalRecord>& intervals, OverlapMethod method,
                       int num_pages, int shard, int num_shards,
                       std::vector<std::vector<CheckPair>>* rows, std::vector<size_t>* row_used,
                       OverlapScratch* scratch, DetectorStats* stats) {
  for (size_t i = static_cast<size_t>(shard); i < intervals.size();
       i += static_cast<size_t>(num_shards)) {
    for (size_t j = i + 1; j < intervals.size(); ++j) {
      const IntervalRecord& a = intervals[i];
      const IntervalRecord& b = intervals[j];
      if (a.id.node == b.id.node) {
        continue;  // Program order; never concurrent.
      }
      ++stats->interval_comparisons;
      if (!IntervalsConcurrent(a.id, a.vc, b.id, b.vc)) {
        continue;
      }
      ++stats->concurrent_pairs;
      if (!PagesOverlap(method, num_pages, a, b, scratch, stats)) {
        continue;
      }
      ++stats->overlapping_pairs;
      // Copy (not move) the overlap so the scratch keeps its capacity for
      // the next pair; the CheckPair needs its own storage regardless.
      EmitCheckPair(a, b, scratch->overlap, &(*rows)[i], &(*row_used)[i]);
    }
  }
}

}  // namespace

const std::vector<CheckPair>& RaceDetector::BuildCheckList(
    const std::vector<IntervalRecord>& epoch_intervals) {
  return BuildCheckListSharded(epoch_intervals, 1, nullptr);
}

const std::vector<CheckPair>& RaceDetector::BuildCheckListSharded(
    const std::vector<IntervalRecord>& epoch_intervals, int num_shards,
    std::vector<DetectorStats>* per_shard) {
  num_shards = std::max(1, num_shards);
  // More shards than rows would leave workers idle; cap to the row count.
  if (static_cast<size_t>(num_shards) > epoch_intervals.size()) {
    num_shards = std::max<int>(1, static_cast<int>(epoch_intervals.size()));
  }
  // The staging rows persist across epochs: grow to the interval count but
  // never shrink, and reset only the used counters, so retired CheckPair
  // slots (and their page vectors) are overwritten in place next epoch.
  if (rows_.size() < epoch_intervals.size()) {
    rows_.resize(epoch_intervals.size());
    row_used_.resize(epoch_intervals.size());
  }
  std::fill(row_used_.begin(), row_used_.end(), size_t{0});
  std::vector<DetectorStats> shard_stats(static_cast<size_t>(num_shards));
  if (shard_scratch_.size() < static_cast<size_t>(num_shards)) {
    shard_scratch_.resize(static_cast<size_t>(num_shards));
  }

  if (num_shards == 1) {
    BuildRowsForShard(epoch_intervals, method_, num_pages_, 0, 1, &rows_, &row_used_,
                      &shard_scratch_[0], &shard_stats[0]);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_shards));
    for (int shard = 0; shard < num_shards; ++shard) {
      workers.emplace_back([this, &epoch_intervals, shard, num_shards, &shard_stats] {
        BuildRowsForShard(epoch_intervals, method_, num_pages_, shard, num_shards, &rows_,
                          &row_used_, &shard_scratch_[static_cast<size_t>(shard)],
                          &shard_stats[static_cast<size_t>(shard)]);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }

  // Deterministic merge: row order = outer-loop order of the serial scan, so
  // the sharded check list is byte-identical to BuildCheckList's. The merged
  // list is the pooled checklist_ arena, overwritten in place.
  size_t merged = 0;
  std::set<IntervalId> in_overlap;
  for (size_t i = 0; i < epoch_intervals.size(); ++i) {
    for (size_t k = 0; k < row_used_[i]; ++k) {
      const CheckPair& pair = rows_[i][k];
      in_overlap.insert(pair.a.id);
      in_overlap.insert(pair.b.id);
      EmitCheckPair(pair.a, pair.b, pair.pages, &checklist_, &merged);
    }
  }
  if (checklist_.size() > merged) {
    checklist_.resize(merged);  // Drop only the tail slots this epoch left unused.
  }

  stats_.intervals_total += epoch_intervals.size();
  stats_.intervals_in_overlap += in_overlap.size();
  for (const DetectorStats& s : shard_stats) {
    stats_.interval_comparisons += s.interval_comparisons;
    stats_.concurrent_pairs += s.concurrent_pairs;
    stats_.overlapping_pairs += s.overlapping_pairs;
    stats_.page_overlap_probes += s.page_overlap_probes;
    stats_.overlap_scratch_builds += s.overlap_scratch_builds;
  }
  if (per_shard != nullptr) {
    *per_shard = std::move(shard_stats);
  }
  return checklist_;
}

void RaceDetector::BuildClaimedPairs(const std::vector<IntervalRecord>& intervals,
                                     OverlapMethod method, int num_pages,
                                     const std::function<bool(NodeId, NodeId)>& claim,
                                     OverlapScratch* scratch, std::vector<CheckPair>* out,
                                     DetectorStats* stats, uint64_t* index_entries) {
  // Page index: which interval indices write / access each page. Candidate
  // pairs fall out of the per-page writer x accessor cross products, so the
  // pair population is linear in actual sharing instead of quadratic in the
  // interval count.
  std::unordered_map<PageId, std::pair<std::vector<uint32_t>, std::vector<uint32_t>>> by_page;
  uint64_t entries = 0;
  for (size_t i = 0; i < intervals.size(); ++i) {
    for (PageId p : intervals[i].write_pages) {
      auto& lists = by_page[p];
      lists.first.push_back(static_cast<uint32_t>(i));
      lists.second.push_back(static_cast<uint32_t>(i));
      ++entries;
    }
    for (PageId p : intervals[i].read_pages) {
      by_page[p].second.push_back(static_cast<uint32_t>(i));
      ++entries;
    }
  }
  if (index_entries != nullptr) {
    *index_entries += entries;
  }

  std::vector<std::pair<uint32_t, uint32_t>> candidates;
  for (const auto& [page, lists] : by_page) {
    for (uint32_t w : lists.first) {
      for (uint32_t x : lists.second) {
        if (w == x) {
          continue;
        }
        candidates.emplace_back(std::min(w, x), std::max(w, x));
      }
    }
  }
  // (i, j) index order over the IntervalId-sorted input == the serial
  // triangle scan's (a.id, b.id) emission order.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  for (const auto& [ci, cj] : candidates) {
    const IntervalRecord& a = intervals[ci];
    const IntervalRecord& b = intervals[cj];
    if (a.id.node == b.id.node) {
      continue;  // Program order; never concurrent.
    }
    if (!claim(a.id.node, b.id.node)) {
      continue;  // Another tree node owns this pair.
    }
    ++stats->interval_comparisons;
    if (!IntervalsConcurrent(a.id, a.vc, b.id, b.vc)) {
      continue;
    }
    ++stats->concurrent_pairs;
    if (!PagesOverlap(method, num_pages, a, b, scratch, stats)) {
      continue;
    }
    ++stats->overlapping_pairs;
    out->push_back(CheckPair{a, b, scratch->overlap});
  }
}

std::vector<std::pair<IntervalId, PageId>> RaceDetector::BitmapsNeeded(
    const std::vector<CheckPair>& pairs) {
  std::set<std::pair<IntervalId, PageId>> needed;
  for (const CheckPair& pair : pairs) {
    for (PageId page : pair.pages) {
      // Only request bitmaps the interval actually has for this page.
      if (pair.a.WritesPage(page) || pair.a.ReadsPage(page)) {
        needed.emplace(pair.a.id, page);
      }
      if (pair.b.WritesPage(page) || pair.b.ReadsPage(page)) {
        needed.emplace(pair.b.id, page);
      }
    }
  }
  return std::vector<std::pair<IntervalId, PageId>>(needed.begin(), needed.end());
}

std::vector<RaceReport> RaceDetector::CompareOnePair(const IntervalId& a, const IntervalId& b,
                                                     const std::vector<PageId>& pages,
                                                     const BitmapLookup& lookup, EpochId epoch,
                                                     uint64_t* bitmap_pairs_compared) {
  std::vector<RaceReport> reports;
  auto report_hits = [&](RaceKind kind, const Bitmap& x, const Bitmap& y, PageId page,
                         const IntervalId& ia, const IntervalId& ib) {
    ++*bitmap_pairs_compared;
    for (uint32_t word : x.IntersectionBits(y)) {
      RaceReport r;
      r.kind = kind;
      r.page = page;
      r.word = word;
      r.interval_a = ia;
      r.interval_b = ib;
      r.epoch = epoch;
      reports.push_back(std::move(r));
    }
  };

  for (PageId page : pages) {
    const PageAccessBitmaps* bm_a = lookup(a, page);
    const PageAccessBitmaps* bm_b = lookup(b, page);
    if (bm_a == nullptr || bm_b == nullptr) {
      continue;  // The interval never truly touched the page (stale notice).
    }
    // Write-write overlap.
    report_hits(RaceKind::kWriteWrite, bm_a->write, bm_b->write, page, a, b);
    // Read-write overlaps, writer first.
    report_hits(RaceKind::kReadWrite, bm_a->write, bm_b->read, page, a, b);
    report_hits(RaceKind::kReadWrite, bm_b->write, bm_a->read, page, b, a);
  }
  return reports;
}

std::vector<RaceReport> RaceDetector::CompareBitmaps(const std::vector<CheckPair>& pairs,
                                                     const BitmapLookup& lookup, EpochId epoch,
                                                     size_t checklist_entries) {
  std::vector<RaceReport> reports;
  stats_.checklist_entries += checklist_entries;

  for (const CheckPair& pair : pairs) {
    std::vector<RaceReport> pair_reports = CompareOnePair(
        pair.a.id, pair.b.id, pair.pages, lookup, epoch, &stats_.bitmap_pairs_compared);
    for (RaceReport& report : pair_reports) {
      reports.push_back(std::move(report));
    }
  }
  return reports;
}

}  // namespace cvm
