// In-process message fabric connecting the DSM nodes: one inbox per node,
// FIFO per sender-receiver pair (delivery is FIFO overall per inbox), with
// global byte/count accounting used by the evaluation harness.
#ifndef CVM_NET_NETWORK_H_
#define CVM_NET_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/net/message.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"

namespace cvm {

// Aggregate traffic statistics; snapshot with Network::stats(). The totals
// and the per-kind maps are updated together under one critical section, so
// any snapshot satisfies messages == sum(messages_by_kind) and
// bytes == sum(bytes_by_kind).
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t read_notice_bytes = 0;
  std::map<std::string, uint64_t> messages_by_kind;
  std::map<std::string, uint64_t> bytes_by_kind;
};

class Network {
 public:
  explicit Network(int num_nodes);

  int num_nodes() const { return num_nodes_; }

  // Optional observability sinks (owned by the caller, outliving the
  // network). Either pointer may be null. Call before traffic starts.
  void AttachObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Sends `message` to message.to; fills in wire_bytes and updates stats.
  void Send(Message message);

  // Blocking receive for `node`; returns nullopt after Close().
  std::optional<Message> Recv(NodeId node);

  // Non-blocking receive.
  std::optional<Message> TryRecv(NodeId node);

  // Wakes all blocked receivers with "closed"; later Sends are dropped.
  void Close();

  NetworkStats stats() const;

  // Zeroes the aggregate statistics (multi-run tools reusing one fabric).
  void ResetStats();

 private:
  struct Inbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  void OnDelivered(const Message& message);

  const int num_nodes_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;

  // Closed flag is separate from the stats lock so Recv's wait predicate
  // (which runs under the inbox lock) never nests another mutex.
  std::atomic<bool> closed_{false};

  mutable std::mutex stats_mu_;
  NetworkStats stats_;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* msgs_total_ = nullptr;
  obs::Counter* bytes_total_ = nullptr;
  obs::Histogram* msg_bytes_hist_ = nullptr;
  obs::Histogram* msg_latency_hist_ = nullptr;
};

}  // namespace cvm

#endif  // CVM_NET_NETWORK_H_
