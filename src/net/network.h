// In-process message fabric connecting the DSM nodes: one inbox per node,
// FIFO per sender-receiver pair (delivery is FIFO overall per inbox), with
// global byte/count accounting used by the evaluation harness.
//
// With a FaultInjector attached (src/fault/), every send runs through a
// reliable transport: per-pair sequence numbers, synchronous acks that the
// injector may destroy, timeout-driven retransmission with capped exponential
// backoff (timeouts are simulated time, derived from the cost model, so the
// retransmit schedule is deterministic in the fault seed), receiver-side
// duplicate suppression, and in-order reassembly. The inboxes therefore see
// exactly-once FIFO delivery per pair even under loss — the guarantee the
// race-detection protocol assumes. Without an injector the send path is
// byte-for-byte identical to the clean fabric.
#ifndef CVM_NET_NETWORK_H_
#define CVM_NET_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/net/message.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"

namespace cvm {

// Aggregate traffic statistics; snapshot with Network::stats(). The totals
// and the per-kind maps are updated together under one critical section, so
// any snapshot satisfies messages == sum(messages_by_kind) and
// bytes == sum(bytes_by_kind). Under fault injection these count every
// transmission attempt (retransmits and duplicates are real wire traffic);
// the clean path counts each message exactly once, as before.
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t read_notice_bytes = 0;
  std::map<std::string, uint64_t> messages_by_kind;
  std::map<std::string, uint64_t> bytes_by_kind;
  // Per-sender traffic, keyed by NodeId. Lets refactor-invariance tests pin
  // down which node's behaviour changed, not just the global totals.
  std::map<NodeId, uint64_t> messages_by_sender;
  std::map<NodeId, uint64_t> bytes_by_sender;
  // Payload bytes that Message copies on the reliable path (retransmission
  // holds, per-attempt delivery handoffs) shared via refcounted SharedVec
  // buffers instead of duplicating. Host-side savings only — never part of
  // the modeled wire traffic above.
  uint64_t zero_copy_bytes_shared = 0;
};

// Structured result of one Send. The transport never aborts the process: a
// send either reaches the receiver's inbox (kDelivered), exhausts its bounded
// retransmission budget or hits a dead peer (kPeerUnreachable — the
// peer-suspicion verdict the caller must surface, docs/FAULTS.md "Crash
// faults & recovery"), or dies with the fabric (kClosed).
struct SendOutcome {
  enum class Status : uint8_t {
    kDelivered,        // In the receiver's inbox (exactly-once FIFO).
    kPeerUnreachable,  // Peer dead or max_send_attempts exhausted.
    kClosed,           // Fabric closed mid-send; the frame died with it.
  };
  Status status = Status::kDelivered;
  // Simulated-time penalty (retransmission backoff + injected delay +
  // suspicion timeout) the sender should charge to its clock.
  double penalty_ns = 0;
  uint32_t attempts = 1;  // Transmission attempts made.

  bool delivered() const { return status == Status::kDelivered; }
  bool unreachable() const { return status == Status::kPeerUnreachable; }
};

class Network {
 public:
  explicit Network(int num_nodes);

  int num_nodes() const { return num_nodes_; }

  // Optional observability sinks (owned by the caller, outliving the
  // network). Either pointer may be null. Call before traffic starts.
  void AttachObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Enables the reliable transport, consulting `injector` (caller-owned,
  // outliving the network) on every transmission attempt. Call before
  // traffic starts. A null injector or a disabled plan keeps the clean path.
  void AttachFaultInjector(const fault::FaultInjector* injector);

  // Sends `message` to message.to; fills in wire_bytes and updates stats.
  // See SendOutcome for the ways a send can finish; on the clean path it is
  // always kDelivered with zero penalty (or kClosed after Close()).
  SendOutcome Send(Message message);

  // Fail-stop `node`: frames from it die on its NIC, frames to it are never
  // acked, so in-flight and future sends to it surface kPeerUnreachable
  // after a bounded suspicion timeout instead of retransmitting forever.
  // Cleared by Reset().
  void MarkNodeDead(NodeId node);
  bool NodeDead(NodeId node) const;

  // Blocking receive for `node`; returns nullopt after Close().
  std::optional<Message> Recv(NodeId node);

  // Non-blocking receive.
  std::optional<Message> TryRecv(NodeId node);

  // Wakes all blocked receivers with "closed"; later Sends are dropped.
  void Close();

  NetworkStats stats() const;
  fault::FaultStats fault_stats() const;

  // Zeroes the aggregate statistics (multi-run tools reusing one fabric).
  void ResetStats();

  // Returns the fabric to its just-constructed state so a warm DsmSystem can
  // run again: reopens the network after Close(), empties every inbox, drops
  // all reliable-transport pair state, and zeroes traffic + fault counters.
  // Call only while no node threads are sending or receiving (between runs).
  void Reset();

 private:
  struct Inbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  // Per-(sender, receiver) reliable-transport state, guarded by fault_mu_.
  struct PairState {
    uint64_t next_seq = 0;       // Sender: next sequence number to assign.
    uint64_t expected_seq = 0;   // Receiver: next in-order sequence.
    uint64_t delivery_ticks = 0; // Frames enqueued on this pair (release clock).
    std::map<uint64_t, Message> reorder;  // Accepted, waiting for their gap.
    struct Held {
      Message msg;
      uint64_t seq = 0;
      uint64_t release_at = 0;  // delivery_ticks threshold for late release.
    };
    std::vector<Held> held;
  };

  void OnDelivered(const Message& message);

  // Flow tracing: charges the TraceContext's wire bytes and, when the sender
  // did not stamp a context (raw Network users), stamps a fallback one and
  // emits its 's' step. No-op unless a tracer with flows is attached.
  void StampFlow(Message& message);

  // Clean path: the pre-fault send, byte-for-byte.
  void SendDirect(Message message);
  // Reliable path: bounded retransmission, peer-suspicion verdicts.
  SendOutcome SendReliable(Message message);
  // Books one abandoned send (fault_mu_ held) and builds its verdict.
  SendOutcome UnreachableLocked(double penalty_ns, uint32_t attempts);

  // Wire accounting + msg.send trace event for one transmission attempt.
  void AccountWire(const Message& message, const char* kind, size_t read_notice_bytes);
  // Receiver-side acceptance of one frame (fault_mu_ held): duplicate
  // suppression, reorder buffering, in-order enqueue, held-frame release.
  // Returns true iff the frame was accepted AND its ack survived.
  bool DeliverFrameLocked(PairState& pair, Message frame, uint64_t seq, bool corrupt,
                          uint32_t attempt);
  void EnqueueInOrderLocked(PairState& pair, Message frame);
  void PushInbox(Message message);

  const int num_nodes_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;

  // Fail-stopped nodes (crash faults). Atomic so the send hot path reads it
  // without a lock; written only by MarkNodeDead/Reset.
  std::vector<std::unique_ptr<std::atomic<bool>>> dead_;

  // Closed flag is separate from the stats lock so Recv's wait predicate
  // (which runs under the inbox lock) never nests another mutex.
  std::atomic<bool> closed_{false};

  mutable std::mutex stats_mu_;
  NetworkStats stats_;

  // Reliable transport (null injector = clean path). Lock order:
  // fault_mu_ -> stats_mu_ / inbox.mu; Recv takes only inbox.mu.
  const fault::FaultInjector* injector_ = nullptr;
  mutable std::mutex fault_mu_;
  std::vector<PairState> pairs_;  // num_nodes^2, indexed from * n + to.
  fault::FaultStats fstats_;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* msgs_total_ = nullptr;
  obs::Counter* bytes_total_ = nullptr;
  obs::Histogram* msg_bytes_hist_ = nullptr;
  obs::Histogram* msg_latency_hist_ = nullptr;
  obs::Counter* fault_drops_ = nullptr;
  obs::Counter* fault_retransmits_ = nullptr;
  obs::Counter* fault_dup_drops_ = nullptr;
  obs::Counter* fault_corrupt_ = nullptr;
  obs::Counter* fault_unreachable_ = nullptr;
  obs::Histogram* fault_backoff_hist_ = nullptr;
};

}  // namespace cvm

#endif  // CVM_NET_NETWORK_H_
