// In-process message fabric connecting the DSM nodes: one inbox per node,
// FIFO per sender-receiver pair (delivery is FIFO overall per inbox), with
// global byte/count accounting used by the evaluation harness.
#ifndef CVM_NET_NETWORK_H_
#define CVM_NET_NETWORK_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/net/message.h"

namespace cvm {

// Aggregate traffic statistics; snapshot with Network::stats().
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t read_notice_bytes = 0;
  std::map<std::string, uint64_t> messages_by_kind;
  std::map<std::string, uint64_t> bytes_by_kind;
};

class Network {
 public:
  explicit Network(int num_nodes);

  int num_nodes() const { return num_nodes_; }

  // Sends `message` to message.to; fills in wire_bytes and updates stats.
  void Send(Message message);

  // Blocking receive for `node`; returns nullopt after Close().
  std::optional<Message> Recv(NodeId node);

  // Non-blocking receive.
  std::optional<Message> TryRecv(NodeId node);

  // Wakes all blocked receivers with "closed"; later Sends are dropped.
  void Close();

  NetworkStats stats() const;

 private:
  struct Inbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  const int num_nodes_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;

  mutable std::mutex stats_mu_;
  NetworkStats stats_;
  bool closed_ = false;
};

}  // namespace cvm

#endif  // CVM_NET_NETWORK_H_
