// Typed message-dispatch registry: a handler table keyed by the Payload
// variant alternative, replacing the service loop's hand-written if-else
// chain. Components (coherence protocol, lock manager, barrier coordinator)
// register handlers for the message kinds they own; anything that arrives
// without a handler is counted and surfaced as a `net.dispatch.unhandled`
// metric plus an optional hook (the node emits a trace instant) instead of
// being dropped silently.
//
// The dispatcher is single-threaded by construction: Dispatch runs only on
// the owning node's service thread, so the per-kind tallies are plain
// integers. The optional obs counters are atomics and safe to read from
// anywhere.
#ifndef CVM_NET_DISPATCH_H_
#define CVM_NET_DISPATCH_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "src/net/message.h"
#include "src/obs/metrics.h"

namespace cvm {

// Index of payload type T inside the Payload variant, at compile time.
template <typename T, typename Variant>
struct PayloadAlternativeIndex;

template <typename T, typename... Ts>
struct PayloadAlternativeIndex<T, std::variant<Ts...>> {
  static constexpr size_t value = [] {
    constexpr bool matches[] = {std::is_same_v<T, Ts>...};
    for (size_t i = 0; i < sizeof...(Ts); ++i) {
      if (matches[i]) {
        return i;
      }
    }
    return sizeof...(Ts);  // static_assert below rejects this.
  }();
  static_assert(value < sizeof...(Ts), "type is not a Payload alternative");
};

template <typename T>
inline constexpr size_t kPayloadIndexOf = PayloadAlternativeIndex<T, Payload>::value;

class MessageDispatcher {
 public:
  using Handler = std::function<void(const Message&)>;

  // Registers the handler for payload type T. At most one handler per kind;
  // re-registration is a programming error.
  template <typename T>
  void Register(Handler handler) {
    RegisterIndex(kPayloadIndexOf<T>, std::move(handler));
  }

  // Called (after counting) for any message with no registered handler.
  void SetUnhandledHook(Handler hook) { unhandled_hook_ = std::move(hook); }

  // Creates the per-kind `net.dispatch.<Kind>` counters and the
  // `net.dispatch.unhandled` counter. Null registry = metrics off.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  // Routes one message. Returns false (and counts) if no handler is
  // registered for its payload kind.
  bool Dispatch(const Message& msg);

  bool HasHandler(size_t kind_index) const {
    return kind_index < kNumPayloadKinds && handlers_[kind_index] != nullptr;
  }
  uint64_t dispatched(size_t kind_index) const {
    return kind_index < kNumPayloadKinds ? dispatched_[kind_index] : 0;
  }
  uint64_t unhandled() const { return unhandled_; }

 private:
  void RegisterIndex(size_t index, Handler handler);

  std::array<Handler, kNumPayloadKinds> handlers_{};
  std::array<uint64_t, kNumPayloadKinds> dispatched_{};
  uint64_t unhandled_ = 0;
  Handler unhandled_hook_;
  std::array<obs::Counter*, kNumPayloadKinds> kind_counters_{};
  obs::Counter* unhandled_counter_ = nullptr;
};

}  // namespace cvm

#endif  // CVM_NET_DISPATCH_H_
