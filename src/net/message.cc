#include "src/net/message.h"

namespace cvm {
namespace {

size_t IntervalsByteSize(const std::vector<IntervalRecord>& records) {
  size_t n = sizeof(uint32_t);
  for (const IntervalRecord& r : records) {
    n += r.ByteSize();
  }
  return n;
}

size_t IntervalsReadNoticeBytes(const std::vector<IntervalRecord>& records) {
  size_t n = 0;
  for (const IntervalRecord& r : records) {
    n += r.ReadNoticeByteSize();
  }
  return n;
}

// The combine-tree messages ship interval records with their vector clocks
// modeled run-length-encoded (barrier-time clocks are near-uniform), so one
// record costs O(runs) instead of O(nodes) on a tree edge.
size_t RleIntervalsByteSize(const std::vector<IntervalRecord>& records) {
  size_t n = sizeof(uint32_t);
  for (const IntervalRecord& r : records) {
    n += r.ByteSize() - r.vc.ByteSize() + r.vc.RleByteSize();
  }
  return n;
}

struct SizeVisitor {
  size_t operator()(const PageRequestMsg&) const { return 13; }
  size_t operator()(const PageReplyMsg& m) const { return 8 + m.data.size(); }
  size_t operator()(const DiffFlushMsg& m) const {
    size_t n = 8;
    for (const Diff& d : m.diffs) {
      n += d.ByteSize();
    }
    return n;
  }
  size_t operator()(const DiffFlushAckMsg&) const { return 8; }
  size_t operator()(const LockRequestMsg& m) const { return 8 + m.requester_vc.ByteSize(); }
  size_t operator()(const LockGrantMsg& m) const {
    size_t n = 8 + m.releaser_vc.ByteSize() + IntervalsByteSize(m.intervals);
    for (const LockRequestMsg& r : m.handoff) {
      n += 9 + r.requester_vc.ByteSize();
    }
    return n;
  }
  size_t operator()(const BarrierArriveMsg& m) const {
    return 16 + m.vc.ByteSize() + IntervalsByteSize(m.intervals);
  }
  size_t operator()(const BitmapRequestMsg& m) const {
    return 8 + m.entries.size() * (sizeof(IntervalId) + sizeof(PageId));
  }
  static size_t BitmapEntriesBytes(const std::vector<BitmapReplyEntry>& entries) {
    size_t n = 0;
    for (const BitmapReplyEntry& e : entries) {
      n += sizeof(IntervalId) + sizeof(PageId) + e.read.WireBytes() + e.write.WireBytes();
    }
    return n;
  }
  size_t operator()(const BitmapReplyMsg& m) const { return 8 + BitmapEntriesBytes(*m.entries); }
  size_t operator()(const CompareRequestMsg& m) const {
    size_t n = 8 + sizeof(uint32_t) + sizeof(uint64_t);
    for (const ComparePairEntry& p : m.pairs) {
      n += sizeof(uint32_t) + 2 * sizeof(IntervalId) + sizeof(uint32_t) +
           p.pages.size() * sizeof(PageId);
    }
    n += m.ships.size() * (sizeof(NodeId) + sizeof(IntervalId) + sizeof(PageId));
    return n;
  }
  size_t operator()(const BitmapShipMsg& m) const {
    return 8 + sizeof(uint64_t) + BitmapEntriesBytes(*m.entries);
  }
  size_t operator()(const CompareReplyMsg& m) const {
    return 8 + sizeof(NodeId) + 4 * sizeof(uint64_t) +
           m.reports.size() * (sizeof(uint32_t) + 1 + sizeof(PageId) + sizeof(uint32_t) +
                               2 * sizeof(IntervalId));
  }
  size_t operator()(const BarrierReleaseMsg& m) const {
    return 16 + m.merged_vc.ByteSize() + IntervalsByteSize(m.intervals);
  }
  size_t operator()(const ErcUpdateMsg& m) const { return 8 + m.record.ByteSize(); }
  size_t operator()(const ErcAckMsg&) const { return 8; }
  size_t operator()(const HeartbeatProbeMsg&) const { return 12; }
  size_t operator()(const HeartbeatAckMsg&) const { return 12; }
  size_t operator()(const PeerSuspectMsg&) const { return 8; }
  size_t operator()(const RunAbortMsg&) const { return 8; }
  size_t operator()(const ShutdownMsg&) const { return 0; }
  size_t operator()(const BarrierTreeArriveMsg& m) const {
    size_t n = 16 + m.vc.RleByteSize() + m.min_vc.RleByteSize() + RleIntervalsByteSize(m.intervals);
    n += sizeof(uint32_t) + m.interest.size() * sizeof(PageId);
    n += sizeof(uint32_t);
    for (const TreeFragmentPair& f : m.fragments) {
      n += 2 * sizeof(IntervalId) + sizeof(uint32_t) + f.pages.size() * sizeof(PageId);
    }
    return n;
  }
  size_t operator()(const BarrierTreeReleaseMsg& m) const {
    return 16 + m.merged_vc.RleByteSize() + RleIntervalsByteSize(m.intervals);
  }
};

struct SharedBytesVisitor {
  size_t operator()(const PageReplyMsg& m) const { return m.data.size(); }
  size_t operator()(const BitmapReplyMsg& m) const {
    return SizeVisitor::BitmapEntriesBytes(*m.entries);
  }
  size_t operator()(const BitmapShipMsg& m) const {
    return SizeVisitor::BitmapEntriesBytes(*m.entries);
  }
  template <typename T>
  size_t operator()(const T&) const {
    return 0;
  }
};

struct ReadNoticeVisitor {
  size_t operator()(const ErcUpdateMsg& m) const { return m.record.ReadNoticeByteSize(); }
  size_t operator()(const LockGrantMsg& m) const { return IntervalsReadNoticeBytes(m.intervals); }
  size_t operator()(const BarrierArriveMsg& m) const {
    return IntervalsReadNoticeBytes(m.intervals);
  }
  size_t operator()(const BarrierReleaseMsg& m) const {
    return IntervalsReadNoticeBytes(m.intervals);
  }
  size_t operator()(const BarrierTreeArriveMsg& m) const {
    return IntervalsReadNoticeBytes(m.intervals);
  }
  size_t operator()(const BarrierTreeReleaseMsg& m) const {
    return IntervalsReadNoticeBytes(m.intervals);
  }
  template <typename T>
  size_t operator()(const T&) const {
    return 0;
  }
};

// Kind names in Payload alternative order; indexed by Payload::index().
constexpr const char* kPayloadKindNames[kNumPayloadKinds] = {
    "PageRequest", "PageReply",      "DiffFlush",  "DiffFlushAck",
    "LockRequest", "LockGrant",      "BarrierArrive", "BitmapRequest",
    "BitmapReply", "CompareRequest", "BitmapShip", "CompareReply",
    "BarrierRelease", "ErcUpdate",   "ErcAck",     "HeartbeatProbe",
    "HeartbeatAck", "PeerSuspect",   "RunAbort",   "BarrierTreeArrive",
    "BarrierTreeRelease", "Shutdown",
};

}  // namespace

size_t PayloadByteSize(const Payload& payload) {
  return kMessageHeaderBytes + std::visit(SizeVisitor{}, payload);
}

size_t PayloadReadNoticeBytes(const Payload& payload) {
  return std::visit(ReadNoticeVisitor{}, payload);
}

size_t PayloadSharedBytes(const Payload& payload) {
  return std::visit(SharedBytesVisitor{}, payload);
}

const char* PayloadKindName(size_t index) {
  return index < kNumPayloadKinds ? kPayloadKindNames[index] : "?";
}

const char* Message::KindName() const { return PayloadKindName(payload.index()); }

}  // namespace cvm
