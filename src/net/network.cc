#include "src/net/network.h"

#include <atomic>

#include "src/common/check.h"

namespace cvm {

Network::Network(int num_nodes) : num_nodes_(num_nodes) {
  CVM_CHECK_GT(num_nodes, 0);
  inboxes_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

void Network::Send(Message message) {
  CVM_CHECK_GE(message.to, 0);
  CVM_CHECK_LT(message.to, num_nodes_);
  message.wire_bytes = PayloadByteSize(message.payload);

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (closed_) {
      return;
    }
    stats_.messages += 1;
    stats_.bytes += message.wire_bytes;
    stats_.read_notice_bytes += PayloadReadNoticeBytes(message.payload);
    stats_.messages_by_kind[message.KindName()] += 1;
    stats_.bytes_by_kind[message.KindName()] += message.wire_bytes;
  }

  Inbox& inbox = *inboxes_[message.to];
  {
    std::lock_guard<std::mutex> lock(inbox.mu);
    inbox.queue.push_back(std::move(message));
  }
  inbox.cv.notify_all();
}

std::optional<Message> Network::Recv(NodeId node) {
  CVM_CHECK_GE(node, 0);
  CVM_CHECK_LT(node, num_nodes_);
  Inbox& inbox = *inboxes_[node];
  std::unique_lock<std::mutex> lock(inbox.mu);
  inbox.cv.wait(lock, [&] {
    if (!inbox.queue.empty()) {
      return true;
    }
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    return closed_;
  });
  if (inbox.queue.empty()) {
    return std::nullopt;
  }
  Message message = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  return message;
}

std::optional<Message> Network::TryRecv(NodeId node) {
  CVM_CHECK_GE(node, 0);
  CVM_CHECK_LT(node, num_nodes_);
  Inbox& inbox = *inboxes_[node];
  std::lock_guard<std::mutex> lock(inbox.mu);
  if (inbox.queue.empty()) {
    return std::nullopt;
  }
  Message message = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  return message;
}

void Network::Close() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    closed_ = true;
  }
  for (auto& inbox : inboxes_) {
    inbox->cv.notify_all();
  }
}

NetworkStats Network::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace cvm
