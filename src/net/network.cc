#include "src/net/network.h"

#include <chrono>

#include "src/common/check.h"

namespace cvm {

namespace {

uint64_t WallNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

Network::Network(int num_nodes) : num_nodes_(num_nodes) {
  CVM_CHECK_GT(num_nodes, 0);
  inboxes_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

void Network::AttachObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  tracer_ = tracer;
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    msgs_total_ = metrics_->counter("net.messages");
    bytes_total_ = metrics_->counter("net.bytes");
    msg_bytes_hist_ = metrics_->histogram("net.msg_bytes");
    msg_latency_hist_ = metrics_->histogram("net.msg_latency_ns");
  }
}

void Network::Send(Message message) {
  CVM_CHECK_GE(message.to, 0);
  CVM_CHECK_LT(message.to, num_nodes_);
  if (closed_.load(std::memory_order_acquire)) {
    return;
  }
  message.wire_bytes = PayloadByteSize(message.payload);
  const char* kind = message.KindName();

  {
    // Totals and per-kind maps move together: one critical section.
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.messages += 1;
    stats_.bytes += message.wire_bytes;
    stats_.read_notice_bytes += PayloadReadNoticeBytes(message.payload);
    stats_.messages_by_kind[kind] += 1;
    stats_.bytes_by_kind[kind] += message.wire_bytes;
  }

  if constexpr (obs::kObsCompiledIn) {
    message.send_wall_ns = WallNs();
    if (msgs_total_ != nullptr) {
      msgs_total_->Increment();
      bytes_total_->Add(message.wire_bytes);
      msg_bytes_hist_->Observe(message.wire_bytes);
    }
    if (tracer_ != nullptr) {
      obs::TraceEvent event;
      event.name = "msg.send";
      event.cat = "net";
      event.phase = 'i';
      event.node = message.from >= 0 ? message.from : message.to;
      event.arg_name = "bytes";
      event.arg_value = message.wire_bytes;
      event.arg2_name = "to";
      event.arg2_value = static_cast<uint64_t>(message.to);
      event.str_arg_name = "kind";
      event.str_arg_value = kind;
      tracer_->Emit(event);
    }
  }

  Inbox& inbox = *inboxes_[message.to];
  {
    std::lock_guard<std::mutex> lock(inbox.mu);
    inbox.queue.push_back(std::move(message));
  }
  inbox.cv.notify_all();
}

void Network::OnDelivered(const Message& message) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (msg_latency_hist_ != nullptr && message.send_wall_ns != 0) {
    const uint64_t now = WallNs();
    msg_latency_hist_->Observe(now > message.send_wall_ns ? now - message.send_wall_ns : 0);
  }
  if (tracer_ != nullptr) {
    obs::TraceEvent event;
    event.name = "msg.recv";
    event.cat = "net";
    event.phase = 'i';
    event.node = message.to;
    event.arg_name = "bytes";
    event.arg_value = message.wire_bytes;
    event.arg2_name = "from";
    event.arg2_value = static_cast<uint64_t>(message.from);
    event.str_arg_name = "kind";
    event.str_arg_value = message.KindName();
    tracer_->Emit(event);
  }
}

std::optional<Message> Network::Recv(NodeId node) {
  CVM_CHECK_GE(node, 0);
  CVM_CHECK_LT(node, num_nodes_);
  Inbox& inbox = *inboxes_[node];
  std::unique_lock<std::mutex> lock(inbox.mu);
  inbox.cv.wait(lock, [&] {
    return !inbox.queue.empty() || closed_.load(std::memory_order_acquire);
  });
  if (inbox.queue.empty()) {
    return std::nullopt;
  }
  Message message = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  lock.unlock();
  OnDelivered(message);
  return message;
}

std::optional<Message> Network::TryRecv(NodeId node) {
  CVM_CHECK_GE(node, 0);
  CVM_CHECK_LT(node, num_nodes_);
  Inbox& inbox = *inboxes_[node];
  std::unique_lock<std::mutex> lock(inbox.mu);
  if (inbox.queue.empty()) {
    return std::nullopt;
  }
  Message message = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  lock.unlock();
  OnDelivered(message);
  return message;
}

void Network::Close() {
  closed_.store(true, std::memory_order_release);
  for (auto& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox->mu);
    inbox->cv.notify_all();
  }
}

NetworkStats Network::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Network::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = NetworkStats{};
}

}  // namespace cvm
