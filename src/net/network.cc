#include "src/net/network.h"

#include <chrono>
#include <thread>

#include "src/common/check.h"

namespace cvm {

namespace {

uint64_t WallNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

Network::Network(int num_nodes) : num_nodes_(num_nodes) {
  CVM_CHECK_GT(num_nodes, 0);
  inboxes_.reserve(num_nodes);
  dead_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
    dead_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

void Network::MarkNodeDead(NodeId node) {
  CVM_CHECK_GE(node, 0);
  CVM_CHECK_LT(node, num_nodes_);
  dead_[static_cast<size_t>(node)]->store(true, std::memory_order_release);
  // Wake anything blocked in Recv on the dead node so its service loop can
  // notice the condition instead of parking forever.
  Inbox& inbox = *inboxes_[static_cast<size_t>(node)];
  std::lock_guard<std::mutex> lock(inbox.mu);
  inbox.cv.notify_all();
}

bool Network::NodeDead(NodeId node) const {
  if (node < 0 || node >= num_nodes_) {
    return false;
  }
  return dead_[static_cast<size_t>(node)]->load(std::memory_order_acquire);
}

void Network::AttachObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  tracer_ = tracer;
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    msgs_total_ = metrics_->counter("net.messages");
    bytes_total_ = metrics_->counter("net.bytes");
    msg_bytes_hist_ = metrics_->histogram("net.msg_bytes");
    msg_latency_hist_ = metrics_->histogram("net.msg_latency_ns");
  }
}

void Network::AttachFaultInjector(const fault::FaultInjector* injector) {
  if (injector == nullptr || !injector->plan().enabled()) {
    injector_ = nullptr;
    return;
  }
  injector_ = injector;
  pairs_.assign(static_cast<size_t>(num_nodes_) * static_cast<size_t>(num_nodes_),
                PairState{});
  if constexpr (obs::kObsCompiledIn) {
    if (metrics_ != nullptr) {
      fault_drops_ = metrics_->counter("net.fault.drops");
      fault_retransmits_ = metrics_->counter("net.fault.retransmits");
      fault_dup_drops_ = metrics_->counter("net.fault.dup_drops");
      fault_corrupt_ = metrics_->counter("net.fault.corrupt_quarantined");
      fault_unreachable_ = metrics_->counter("net.peer.unreachable");
      fault_backoff_hist_ = metrics_->histogram("net.fault.backoff_ns");
    }
  }
}

void Network::AccountWire(const Message& message, const char* kind,
                          size_t read_notice_bytes) {
  {
    // Totals and per-kind maps move together: one critical section.
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.messages += 1;
    stats_.bytes += message.wire_bytes;
    stats_.read_notice_bytes += read_notice_bytes;
    stats_.messages_by_kind[kind] += 1;
    stats_.bytes_by_kind[kind] += message.wire_bytes;
    stats_.messages_by_sender[message.from] += 1;
    stats_.bytes_by_sender[message.from] += message.wire_bytes;
  }

  if constexpr (obs::kObsCompiledIn) {
    if (msgs_total_ != nullptr) {
      msgs_total_->Increment();
      bytes_total_->Add(message.wire_bytes);
      msg_bytes_hist_->Observe(message.wire_bytes);
    }
    if (tracer_ != nullptr) {
      obs::TraceEvent event;
      event.name = "msg.send";
      event.cat = "net";
      event.phase = 'i';
      event.node = message.from >= 0 ? message.from : message.to;
      event.arg_name = "bytes";
      event.arg_value = message.wire_bytes;
      event.arg2_name = "to";
      event.arg2_value = static_cast<uint64_t>(message.to);
      event.str_arg_name = "kind";
      event.str_arg_value = kind;
      tracer_->Emit(event);
    }
  }
}

void Network::StampFlow(Message& message) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (tracer_ == nullptr || !tracer_->flows_enabled()) {
    return;
  }
  // The context is real header traffic while flows are on; charging it here
  // keeps every downstream consumer of wire_bytes (stats, Lamport observes)
  // honest. Retransmitted frames re-carry it like any other header byte.
  message.wire_bytes += obs::kTraceContextWireBytes;
  if (message.ctx.stamped()) {
    return;
  }
  // Fallback for senders above the Node layer's stamping (tests driving the
  // fabric directly): a fresh chain with a wall-clock-only 's' step.
  message.ctx.origin = message.from;
  message.ctx.causal_id = tracer_->NextFlowId();
  obs::TraceEvent event;
  event.name = PayloadKindName(message.payload.index());
  event.cat = "flow";
  event.phase = 's';
  event.node = message.from >= 0 ? message.from : message.to;
  event.flow_id = message.ctx.causal_id;
  event.arg_name = "to";
  event.arg_value = static_cast<uint64_t>(message.to);
  tracer_->Emit(event);
}

void Network::PushInbox(Message message) {
  Inbox& inbox = *inboxes_[message.to];
  {
    std::lock_guard<std::mutex> lock(inbox.mu);
    inbox.queue.push_back(std::move(message));
  }
  inbox.cv.notify_all();
}

SendOutcome Network::Send(Message message) {
  CVM_CHECK_GE(message.to, 0);
  CVM_CHECK_LT(message.to, num_nodes_);
  if (closed_.load(std::memory_order_acquire)) {
    return SendOutcome{SendOutcome::Status::kClosed, 0, 0};
  }
  if (NodeDead(message.from)) {
    // A dead node's frames die on its NIC; nothing leaves, nothing is billed.
    return SendOutcome{SendOutcome::Status::kPeerUnreachable, 0, 0};
  }
  if (injector_ != nullptr) {
    return SendReliable(std::move(message));
  }
  if (NodeDead(message.to)) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    return UnreachableLocked(0, 1);
  }
  SendDirect(std::move(message));
  return SendOutcome{SendOutcome::Status::kDelivered, 0, 1};
}

void Network::SendDirect(Message message) {
  message.wire_bytes = PayloadByteSize(message.payload);
  if constexpr (obs::kObsCompiledIn) {
    message.send_wall_ns = WallNs();
    StampFlow(message);
  }
  AccountWire(message, message.KindName(), PayloadReadNoticeBytes(message.payload));
  PushInbox(std::move(message));
}

SendOutcome Network::UnreachableLocked(double penalty_ns, uint32_t attempts) {
  ++fstats_.unreachable;
  if constexpr (obs::kObsCompiledIn) {
    if (fault_unreachable_ != nullptr) {
      fault_unreachable_->Increment();
    }
  }
  return SendOutcome{SendOutcome::Status::kPeerUnreachable, penalty_ns, attempts};
}

SendOutcome Network::SendReliable(Message message) {
  const NodeId from = message.from;
  const NodeId to = message.to;
  CVM_CHECK_GE(from, 0);
  CVM_CHECK_LT(from, num_nodes_);
  message.wire_bytes = PayloadByteSize(message.payload);
  if constexpr (obs::kObsCompiledIn) {
    message.send_wall_ns = WallNs();
    StampFlow(message);
  }
  const char* kind = message.KindName();
  const size_t rn_bytes = PayloadReadNoticeBytes(message.payload);
  // Every Message copy below (held frames, per-attempt delivery handoffs)
  // shares this many payload bytes by refcount instead of duplicating them.
  const uint64_t shared_bytes = PayloadSharedBytes(message.payload);
  uint64_t message_copies = 0;
  PairState& pair =
      pairs_[static_cast<size_t>(from) * static_cast<size_t>(num_nodes_) +
             static_cast<size_t>(to)];

  const uint32_t max_attempts = std::max<uint32_t>(1, injector_->plan().max_send_attempts);
  std::unique_lock<std::mutex> lock(fault_mu_);
  const uint64_t seq = pair.next_seq++;
  double penalty_ns = 0;
  uint32_t attempt = 0;
  while (true) {
    if (closed_.load(std::memory_order_acquire)) {
      // Shutdown: the frame dies with the fabric.
      return SendOutcome{SendOutcome::Status::kClosed, penalty_ns, attempt};
    }
    if (NodeDead(to) || NodeDead(from)) {
      // Fail-stopped peer: no ack will ever come. One full retransmission
      // timeout models the suspicion delay, then the verdict surfaces.
      penalty_ns += injector_->BackoffNs(~0u);  // Saturates at rto_cap.
      return UnreachableLocked(penalty_ns, attempt);
    }
    if (attempt >= max_attempts) {
      // Retransmission budget exhausted. Message-level profiles heal far
      // below this bound, so this is the structural "peer never answers"
      // signal — surfaced, never a process abort.
      return UnreachableLocked(penalty_ns, attempt);
    }
    const fault::FaultDecision decision = injector_->OnSendAttempt(from, to, seq, attempt);
    ++fstats_.data_frames;
    bool acked = false;
    if (!decision.deliver) {
      ++fstats_.drops;
      AccountWire(message, kind, rn_bytes);  // It left the sender's NIC.
      if constexpr (obs::kObsCompiledIn) {
        if (fault_drops_ != nullptr) {
          fault_drops_->Increment();
        }
      }
    } else if (decision.delay_hops > 0) {
      // Held in the network; released (as a stale duplicate) once
      // delay_hops more frames have been delivered on this pair.
      ++fstats_.delayed;
      penalty_ns += injector_->DelayNs(decision.delay_hops);
      AccountWire(message, kind, rn_bytes);
      ++message_copies;
      pair.held.push_back(
          PairState::Held{message, seq, pair.delivery_ticks + decision.delay_hops});
    } else {
      AccountWire(message, kind, rn_bytes);
      ++message_copies;
      acked = DeliverFrameLocked(pair, message, seq, decision.corrupt, attempt);
      if (decision.duplicate) {
        ++fstats_.dup_frames;
        AccountWire(message, kind, rn_bytes);
        ++message_copies;
        acked = DeliverFrameLocked(pair, message, seq, false, attempt) || acked;
      }
    }
    if (acked) {
      break;
    }
    // The (simulated) retransmission timeout fires: capped exponential
    // backoff, charged to the sender's clock by the caller.
    ++fstats_.retransmits;
    const double backoff_ns = injector_->BackoffNs(attempt);
    fstats_.backoff_ns += backoff_ns;
    penalty_ns += backoff_ns;
    if constexpr (obs::kObsCompiledIn) {
      if (fault_retransmits_ != nullptr) {
        fault_retransmits_->Increment();
        fault_backoff_hist_->Observe(static_cast<uint64_t>(backoff_ns));
      }
      if (tracer_ != nullptr) {
        obs::TraceEvent event;
        event.name = "msg.retransmit";
        event.cat = "net";
        event.phase = 'i';
        event.node = from;
        event.arg_name = "attempt";
        event.arg_value = attempt + 1;
        event.arg2_name = "to";
        event.arg2_value = static_cast<uint64_t>(to);
        event.str_arg_name = "kind";
        event.str_arg_value = kind;
        tracer_->Emit(event);
      }
    }
    ++attempt;
    // Let concurrent senders interleave between attempts — this is what
    // makes later sequence numbers overtake a stuck frame and exercises the
    // receiver's reorder buffer. Counters stay deterministic: decisions are
    // keyed by (seq, attempt), never by arrival order.
    lock.unlock();
    std::this_thread::yield();
    lock.lock();
  }
  if (shared_bytes != 0 && message_copies != 0) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.zero_copy_bytes_shared += shared_bytes * message_copies;
  }
  return SendOutcome{SendOutcome::Status::kDelivered, penalty_ns, attempt + 1};
}

bool Network::DeliverFrameLocked(PairState& pair, Message frame, uint64_t seq,
                                 bool corrupt, uint32_t attempt) {
  const NodeId from = frame.from;
  const NodeId to = frame.to;
  if (corrupt) {
    // Checksum failure: the receiver quarantines the frame (never visible to
    // the DSM handlers) and sends no ack, so the sender retransmits.
    ++fstats_.corrupted;
    if constexpr (obs::kObsCompiledIn) {
      if (fault_corrupt_ != nullptr) {
        fault_corrupt_->Increment();
      }
    }
    return false;
  }
  if (seq < pair.expected_seq) {
    // Duplicate (retransmit after a lost ack, injected dup, or a late-released
    // held frame): suppress, but re-ack so the sender stops resending.
    ++fstats_.dup_dropped;
    if constexpr (obs::kObsCompiledIn) {
      if (fault_dup_drops_ != nullptr) {
        fault_dup_drops_->Increment();
      }
    }
  } else if (seq == pair.expected_seq) {
    EnqueueInOrderLocked(pair, std::move(frame));
  } else {
    // Gap: a lower sequence number is still in flight on another thread.
    // Park the frame; EnqueueInOrderLocked drains it once the gap fills.
    ++fstats_.reorder_buffered;
    pair.reorder.emplace(seq, std::move(frame));
  }
  const bool ack_lost = injector_->DropAck(from, to, seq, attempt);
  if (ack_lost) {
    ++fstats_.acks_dropped;
  }
  return !ack_lost;
}

void Network::EnqueueInOrderLocked(PairState& pair, Message frame) {
  PushInbox(std::move(frame));
  ++pair.expected_seq;
  ++pair.delivery_ticks;
  // Drain any parked frames whose gap just filled.
  for (auto it = pair.reorder.begin();
       it != pair.reorder.end() && it->first == pair.expected_seq;
       it = pair.reorder.erase(it)) {
    PushInbox(std::move(it->second));
    ++pair.expected_seq;
    ++pair.delivery_ticks;
  }
  // Release held frames that have aged out AND whose sequence number has
  // been superseded (the sender's retransmitted copy was delivered first —
  // the delayed original is modeled as always slower than the retransmit).
  // They surface as suppressed duplicates; their wire bytes were accounted
  // when they were first transmitted.
  for (size_t i = 0; i < pair.held.size();) {
    if (pair.held[i].release_at <= pair.delivery_ticks &&
        pair.held[i].seq < pair.expected_seq) {
      ++fstats_.dup_dropped;
      if constexpr (obs::kObsCompiledIn) {
        if (fault_dup_drops_ != nullptr) {
          fault_dup_drops_->Increment();
        }
      }
      pair.held.erase(pair.held.begin() + static_cast<int64_t>(i));
    } else {
      ++i;
    }
  }
}

void Network::OnDelivered(const Message& message) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (msg_latency_hist_ != nullptr && message.send_wall_ns != 0) {
    const uint64_t now = WallNs();
    msg_latency_hist_->Observe(now > message.send_wall_ns ? now - message.send_wall_ns : 0);
  }
  if (tracer_ != nullptr) {
    obs::TraceEvent event;
    event.name = "msg.recv";
    event.cat = "net";
    event.phase = 'i';
    event.node = message.to;
    event.arg_name = "bytes";
    event.arg_value = message.wire_bytes;
    event.arg2_name = "from";
    event.arg2_value = static_cast<uint64_t>(message.from);
    event.str_arg_name = "kind";
    event.str_arg_value = message.KindName();
    tracer_->Emit(event);
  }
}

std::optional<Message> Network::Recv(NodeId node) {
  CVM_CHECK_GE(node, 0);
  CVM_CHECK_LT(node, num_nodes_);
  Inbox& inbox = *inboxes_[node];
  std::unique_lock<std::mutex> lock(inbox.mu);
  inbox.cv.wait(lock, [&] {
    return !inbox.queue.empty() || closed_.load(std::memory_order_acquire);
  });
  if (inbox.queue.empty()) {
    return std::nullopt;
  }
  Message message = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  lock.unlock();
  OnDelivered(message);
  return message;
}

std::optional<Message> Network::TryRecv(NodeId node) {
  CVM_CHECK_GE(node, 0);
  CVM_CHECK_LT(node, num_nodes_);
  Inbox& inbox = *inboxes_[node];
  std::unique_lock<std::mutex> lock(inbox.mu);
  if (inbox.queue.empty()) {
    return std::nullopt;
  }
  Message message = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  lock.unlock();
  OnDelivered(message);
  return message;
}

void Network::Close() {
  closed_.store(true, std::memory_order_release);
  for (auto& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox->mu);
    inbox->cv.notify_all();
  }
}

NetworkStats Network::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

fault::FaultStats Network::fault_stats() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return fstats_;
}

void Network::ResetStats() {
  // Never hold both: the send path locks fault_mu_ -> stats_mu_, so nesting
  // them here in the opposite order would invert the documented lock order.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = NetworkStats{};
  }
  std::lock_guard<std::mutex> fault_lock(fault_mu_);
  fstats_ = fault::FaultStats{};
}

void Network::Reset() {
  for (auto& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox->mu);
    inbox->queue.clear();
  }
  for (auto& dead : dead_) {
    dead->store(false, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    // Sequence numbers, reorder buffers, and held frames all restart so the
    // next run's injection schedule is identical to a fresh process.
    for (auto& pair : pairs_) {
      pair = PairState{};
    }
  }
  ResetStats();
  closed_.store(false, std::memory_order_release);
}

}  // namespace cvm
