#include "src/net/dispatch.h"

#include <utility>

#include "src/common/check.h"

namespace cvm {

void MessageDispatcher::RegisterIndex(size_t index, Handler handler) {
  CVM_CHECK_LT(index, kNumPayloadKinds);
  CVM_CHECK(handlers_[index] == nullptr)
      << "duplicate handler for payload kind " << PayloadKindName(index);
  handlers_[index] = std::move(handler);
}

void MessageDispatcher::AttachMetrics(obs::MetricsRegistry* metrics) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (metrics == nullptr) {
    return;
  }
  // Eagerly created so the metrics CSV has a stable column set from epoch 0,
  // and so `net.dispatch.unhandled` exists (at zero) even on clean runs.
  for (size_t i = 0; i < kNumPayloadKinds; ++i) {
    kind_counters_[i] = metrics->counter(std::string("net.dispatch.") + PayloadKindName(i));
  }
  unhandled_counter_ = metrics->counter("net.dispatch.unhandled");
}

bool MessageDispatcher::Dispatch(const Message& msg) {
  const size_t index = msg.payload.index();
  const Handler& handler = handlers_[index];
  if (handler == nullptr) {
    ++unhandled_;
    if constexpr (obs::kObsCompiledIn) {
      if (unhandled_counter_ != nullptr) {
        unhandled_counter_->Increment();
      }
    }
    if (unhandled_hook_) {
      unhandled_hook_(msg);
    }
    return false;
  }
  ++dispatched_[index];
  if constexpr (obs::kObsCompiledIn) {
    if (kind_counters_[index] != nullptr) {
      kind_counters_[index]->Increment();
    }
  }
  handler(msg);
  return true;
}

}  // namespace cvm
