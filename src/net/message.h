// Message types exchanged by DSM nodes. The fabric is in-process, but every
// payload has a byte-accurate wire size so bandwidth overheads (e.g. the
// marginal cost of read notices, Table 3) can be measured exactly.
#ifndef CVM_NET_MESSAGE_H_
#define CVM_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/bitmap.h"
#include "src/common/types.h"
#include "src/mem/diff.h"
#include "src/protocol/interval.h"
#include "src/vc/vector_clock.h"

namespace cvm {

// ---- Page traffic (single-writer protocol + HLRC base copies) ----

struct PageRequestMsg {
  PageId page = -1;
  bool want_write = false;
  NodeId requester = kNoNode;  // Final reply destination (requests are forwarded).
  bool forwarded = false;      // Set once the home/manager has routed it.
};

struct PageReplyMsg {
  PageId page = -1;
  std::vector<uint8_t> data;
  bool grants_ownership = false;
};

// ---- Multi-writer (home-based) diff traffic ----

struct DiffFlushMsg {
  std::vector<Diff> diffs;
  uint64_t token = 0;  // Matches the ack.
};

struct DiffFlushAckMsg {
  uint64_t token = 0;
};

// ---- Lock traffic (TreadMarks-style distributed queue) ----

struct LockRequestMsg {
  LockId lock = -1;
  NodeId requester = kNoNode;
  VectorClock requester_vc;  // Lets the releaser send only unseen intervals.
  bool forwarded = false;    // Set once the manager has routed the request.
};

struct LockGrantMsg {
  LockId lock = -1;
  std::vector<IntervalRecord> intervals;  // Unseen by the requester.
  VectorClock releaser_vc;
  uint64_t releaser_time_ns = 0;  // Simulated release timestamp.
  // Replay mode: still-queued requests travel with the token so the new
  // holder can grant them when their scheduled turn comes.
  std::vector<LockRequestMsg> handoff;
};

// ---- Barrier + race-detection rounds ----

struct BarrierArriveMsg {
  EpochId epoch = -1;
  NodeId node = kNoNode;
  std::vector<IntervalRecord> intervals;  // Unseen by the master.
  VectorClock vc;
  uint64_t arrive_time_ns = 0;
};

// One entry of the check list (§4 step 3): a (interval, page) pair whose
// word bitmaps the master needs.
struct CheckEntry {
  IntervalId interval;
  PageId page = -1;
};

struct BitmapRequestMsg {
  EpochId epoch = -1;
  std::vector<CheckEntry> entries;
};

struct BitmapReplyEntry {
  IntervalId interval;
  PageId page = -1;
  Bitmap read;
  Bitmap write;
};

struct BitmapReplyMsg {
  EpochId epoch = -1;
  std::vector<BitmapReplyEntry> entries;
};

struct BarrierReleaseMsg {
  EpochId epoch = -1;
  std::vector<IntervalRecord> intervals;  // Unseen by this worker.
  VectorClock merged_vc;
  uint64_t release_time_ns = 0;
};

// ---- Eager-RC traffic: notices pushed at release ----

struct ErcUpdateMsg {
  IntervalRecord record;  // The released interval; receivers invalidate.
  uint64_t token = 0;
};

struct ErcAckMsg {
  uint64_t token = 0;
};

struct ShutdownMsg {};

using Payload = std::variant<PageRequestMsg, PageReplyMsg, DiffFlushMsg, DiffFlushAckMsg,
                             LockRequestMsg, LockGrantMsg, BarrierArriveMsg, BitmapRequestMsg,
                             BitmapReplyMsg, BarrierReleaseMsg, ErcUpdateMsg, ErcAckMsg,
                             ShutdownMsg>;

struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Payload payload;

  // Cached wire size (header + payload), filled by the network at send time.
  size_t wire_bytes = 0;

  // Wall-clock enqueue timestamp (ns, steady clock), filled by the network
  // at send time; used for the delivery-latency histogram. Not part of the
  // modeled wire size.
  uint64_t send_wall_ns = 0;

  const char* KindName() const;
};

// Byte-accurate payload sizes. Header cost is kMessageHeaderBytes.
inline constexpr size_t kMessageHeaderBytes = 32;

size_t PayloadByteSize(const Payload& payload);

// Bytes attributable to read notices inside the payload's interval records —
// the marginal bandwidth the paper's modification adds (Table 3 "Msg Ohead").
size_t PayloadReadNoticeBytes(const Payload& payload);

}  // namespace cvm

#endif  // CVM_NET_MESSAGE_H_
