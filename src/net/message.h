// Message types exchanged by DSM nodes. The fabric is in-process, but every
// payload has a byte-accurate wire size so bandwidth overheads (e.g. the
// marginal cost of read notices, Table 3) can be measured exactly.
#ifndef CVM_NET_MESSAGE_H_
#define CVM_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/bitmap.h"
#include "src/common/types.h"
#include "src/mem/diff.h"
#include "src/obs/trace_context.h"
#include "src/perf/shared_vec.h"
#include "src/protocol/interval.h"
#include "src/race/bitmap_codec.h"
#include "src/vc/vector_clock.h"

namespace cvm {

// ---- Page traffic (single-writer protocol + HLRC base copies) ----

struct PageRequestMsg {
  PageId page = -1;
  bool want_write = false;
  NodeId requester = kNoNode;  // Final reply destination (requests are forwarded).
  bool forwarded = false;      // Set once the home/manager has routed it.
};

struct PageReplyMsg {
  PageId page = -1;
  // Refcounted: copying the message (retransmission holds, parked replies)
  // shares the page bytes; the installer TakeOrCopy()s them out.
  perf::SharedVec<uint8_t> data;
  bool grants_ownership = false;
};

// ---- Multi-writer (home-based) diff traffic ----

struct DiffFlushMsg {
  std::vector<Diff> diffs;
  uint64_t token = 0;  // Matches the ack.
};

struct DiffFlushAckMsg {
  uint64_t token = 0;
};

// ---- Lock traffic (TreadMarks-style distributed queue) ----

struct LockRequestMsg {
  LockId lock = -1;
  NodeId requester = kNoNode;
  VectorClock requester_vc;  // Lets the releaser send only unseen intervals.
  bool forwarded = false;    // Set once the manager has routed the request.
};

struct LockGrantMsg {
  LockId lock = -1;
  std::vector<IntervalRecord> intervals;  // Unseen by the requester.
  VectorClock releaser_vc;
  uint64_t releaser_time_ns = 0;  // Simulated release timestamp.
  // Replay mode: still-queued requests travel with the token so the new
  // holder can grant them when their scheduled turn comes.
  std::vector<LockRequestMsg> handoff;
};

// ---- Barrier + race-detection rounds ----

struct BarrierArriveMsg {
  EpochId epoch = -1;
  NodeId node = kNoNode;
  std::vector<IntervalRecord> intervals;  // Unseen by the master.
  VectorClock vc;
  uint64_t arrive_time_ns = 0;
};

// One entry of the check list (§4 step 3): a (interval, page) pair whose
// word bitmaps the master needs.
struct CheckEntry {
  IntervalId interval;
  PageId page = -1;
};

struct BitmapRequestMsg {
  EpochId epoch = -1;
  std::vector<CheckEntry> entries;
};

// One (interval, page) bitmap pair on the wire. Bitmaps travel encoded
// (src/race/bitmap_codec.h): kRaw reproduces the legacy full-page payload;
// with compression enabled the codec picks the smallest of the sparse /
// run-length / raw encodings per bitmap.
struct BitmapReplyEntry {
  IntervalId interval;
  PageId page = -1;
  EncodedBitmap read;
  EncodedBitmap write;
};

struct BitmapReplyMsg {
  EpochId epoch = -1;
  // Refcounted (see PageReplyMsg::data): the entry list is the largest
  // payload in the barrier rounds and is only ever read after send.
  perf::SharedVec<BitmapReplyEntry> entries;
};

// ---- Distributed barrier-time compare (§6.3 "distributing the check") ----

// One check pair assigned to a constituent node: the node compares the two
// intervals' bitmaps over `pages` locally and ships back only reports.
// `pair_index` is the pair's position in the master's check list; the master
// merges remote reports back in pair_index order so the distributed report
// stream is byte-identical to the serial one.
struct ComparePairEntry {
  uint32_t pair_index = 0;
  IntervalId a;
  IntervalId b;
  std::vector<PageId> pages;
};

// Directs the receiving node to ship the bitmaps of one of its own
// (interval, page) entries to `dest`, the owner of a pair that needs them.
struct ShipDirective {
  NodeId dest = kNoNode;
  IntervalId interval;
  PageId page = -1;
};

// Master -> constituent node, one per epoch: the pairs this node owns, the
// bitmaps it must ship to other owners, and how many BitmapShipMsg messages
// to expect before its own compare can run.
struct CompareRequestMsg {
  EpochId epoch = -1;
  std::vector<ComparePairEntry> pairs;
  std::vector<ShipDirective> ships;
  uint32_t expected_ship_msgs = 0;
  uint64_t request_time_ns = 0;  // Master's simulated clock at send.
};

// Peer -> pair owner: the encoded bitmaps the owner's compare needs.
struct BitmapShipMsg {
  EpochId epoch = -1;
  perf::SharedVec<BitmapReplyEntry> entries;  // Refcounted, read-only.
  uint64_t send_time_ns = 0;  // Shipper's simulated clock at send.
};

// One remote race report, compactly: the master re-derives address/symbol.
struct RemoteReportEntry {
  uint32_t pair_index = 0;
  uint8_t kind = 0;  // RaceKind.
  PageId page = -1;
  uint32_t word = 0;
  IntervalId interval_a;
  IntervalId interval_b;
};

// Constituent node -> master: compare results plus accounting. Exactly one
// reply per CompareRequestMsg. `reply_time_ns` is the node's simulated clock
// after its compare work, so the master's Lamport-observe models the
// distributed round's critical path (max over nodes, not sum).
struct CompareReplyMsg {
  EpochId epoch = -1;
  NodeId node = kNoNode;
  std::vector<RemoteReportEntry> reports;
  uint64_t pairs_compared = 0;        // Bitmap pairs this node compared.
  uint64_t ship_bytes_wire = 0;       // Encoded bytes this node shipped out.
  uint64_t ship_bytes_raw = 0;        // Same entries at the legacy raw size.
  uint64_t reply_time_ns = 0;
};

struct BarrierReleaseMsg {
  EpochId epoch = -1;
  std::vector<IntervalRecord> intervals;  // Unseen by this worker.
  VectorClock merged_vc;
  uint64_t release_time_ns = 0;
};

// ---- Hierarchical (k-ary combine tree) barrier ----

// One pre-reduced check-list pair, produced at the tree node that is the
// LCA of the two intervals' owners: both full records are known there, so
// only the ids and the overlapping pages travel up the tree. The root
// rehydrates the records from its merged log.
struct TreeFragmentPair {
  IntervalId a;
  IntervalId b;
  std::vector<PageId> pages;
};

// Child subtree -> parent, one per barrier: the subtree's merged interval
// records, its element-wise max VC (what the subtree has seen) and min VC
// (what every member has seen — the parent tailors releases with it), and
// the check-list fragments claimed inside the subtree. Vector clocks are
// modeled run-length-encoded on the wire (barrier-time clocks are
// near-uniform), which is what keeps combine traffic sub-quadratic.
struct BarrierTreeArriveMsg {
  EpochId epoch = -1;
  NodeId node = kNoNode;  // The subtree root sending this.
  std::vector<IntervalRecord> intervals;
  VectorClock vc;      // Element-wise max over the subtree.
  VectorClock min_vc;  // Element-wise min over the subtree.
  std::vector<TreeFragmentPair> fragments;
  // Pages for which some subtree member holds a valid copy. The parent
  // forwards a release record down this edge only if one of its write
  // notices intersects the set — an absent page means every member's copy is
  // already invalid, so the notice would be a no-op there.
  std::vector<PageId> interest;
  uint64_t arrive_time_ns = 0;
};

// Parent -> child subtree root: the records unseen by the child subtree's
// min VC plus the fully merged clock. Interior nodes re-tailor the payload
// per grandchild subtree before forwarding it down.
struct BarrierTreeReleaseMsg {
  EpochId epoch = -1;
  std::vector<IntervalRecord> intervals;
  VectorClock merged_vc;
  uint64_t release_time_ns = 0;
};

// ---- Eager-RC traffic: notices pushed at release ----

struct ErcUpdateMsg {
  IntervalRecord record;  // The released interval; receivers invalidate.
  uint64_t token = 0;
};

struct ErcAckMsg {
  uint64_t token = 0;
};

// ---- Failure detection & run abort (docs/FAULTS.md "Crash faults") ----

// Master (or a timed-out worker) pings a silent peer. A live-but-slow peer
// answers with HeartbeatAckMsg; a dead peer's transport surfaces
// kPeerUnreachable to the prober, confirming the suspicion.
struct HeartbeatProbeMsg {
  EpochId epoch = -1;
  uint64_t token = 0;
};

struct HeartbeatAckMsg {
  EpochId epoch = -1;
  uint64_t token = 0;
};

// Worker -> master: "my send to `suspect` came back unreachable" — lets a
// worker that tripped over the dead node first hand the verdict to the
// barrier master, which owns the abort decision for the epoch.
struct PeerSuspectMsg {
  EpochId epoch = -1;
  NodeId suspect = kNoNode;
};

// Broadcast by whichever survivor first confirms a dead peer: every node
// abandons epoch `epoch`, unwinds its app thread, and rolls back to its last
// checkpoint. Idempotent — later copies from other detectors are ignored.
struct RunAbortMsg {
  EpochId epoch = -1;
  NodeId dead = kNoNode;
};

struct ShutdownMsg {};

using Payload = std::variant<PageRequestMsg, PageReplyMsg, DiffFlushMsg, DiffFlushAckMsg,
                             LockRequestMsg, LockGrantMsg, BarrierArriveMsg, BitmapRequestMsg,
                             BitmapReplyMsg, CompareRequestMsg, BitmapShipMsg, CompareReplyMsg,
                             BarrierReleaseMsg, ErcUpdateMsg, ErcAckMsg, HeartbeatProbeMsg,
                             HeartbeatAckMsg, PeerSuspectMsg, RunAbortMsg, BarrierTreeArriveMsg,
                             BarrierTreeReleaseMsg, ShutdownMsg>;

struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Payload payload;

  // Cached wire size (header + payload), filled by the network at send time.
  size_t wire_bytes = 0;

  // Wall-clock enqueue timestamp (ns, steady clock), filled by the network
  // at send time; used for the delivery-latency histogram. Not part of the
  // modeled wire size.
  uint64_t send_wall_ns = 0;

  // Causal flow context. Stamped by Node::Send (rich: epoch, parent chain,
  // forward inheritance) or by the network as a fallback, but only while
  // flow tracing is active; inert — and free on the modeled wire —
  // otherwise. When stamped, the network adds obs::kTraceContextWireBytes
  // to wire_bytes.
  obs::TraceContext ctx;

  const char* KindName() const;
};

// Number of payload alternatives; dispatch tables are indexed by
// Payload::index().
inline constexpr size_t kNumPayloadKinds = std::variant_size_v<Payload>;

// Stable kind name for a payload alternative index (see KindNameVisitor's
// table); "?" for an out-of-range index.
const char* PayloadKindName(size_t index);

// Byte-accurate payload sizes. Header cost is kMessageHeaderBytes.
inline constexpr size_t kMessageHeaderBytes = 32;

size_t PayloadByteSize(const Payload& payload);

// Bytes attributable to read notices inside the payload's interval records —
// the marginal bandwidth the paper's modification adds (Table 3 "Msg Ohead").
size_t PayloadReadNoticeBytes(const Payload& payload);

// Wire bytes of the payload that live in refcounted SharedVec buffers —
// i.e. the bytes a Message copy (retransmission hold, parked reply) shares
// instead of duplicating. Feeds NetworkStats::zero_copy_bytes_shared.
size_t PayloadSharedBytes(const Payload& payload);

}  // namespace cvm

#endif  // CVM_NET_MESSAGE_H_
