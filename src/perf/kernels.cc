#include "src/perf/kernels.h"

#include "src/perf/simd.h"

// The scalar references must stay honest baselines: never inlined into (and
// fused with) bench/test call sites, never silently auto-vectorized into the
// thing they are a baseline for.
#if defined(__GNUC__)
#define CVM_PERF_NOINLINE __attribute__((noinline))
#else
#define CVM_PERF_NOINLINE
#endif

namespace cvm {
namespace perf {

namespace {

// Extracts the set bits of one 64-bit word as ascending indices based at
// `base`. Shared by every target's enumeration kernels.
inline void AppendBitsOfWord(uint64_t w, uint32_t base, std::vector<uint32_t>* out) {
  while (w != 0) {
    out->push_back(base + static_cast<uint32_t>(__builtin_ctzll(w)));
    w &= w - 1;
  }
}

#if defined(CVM_SIMD_SSE2)

inline bool AllZero128(__m128i v) {
  return _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_setzero_si128())) == 0xFFFF;
}

inline __m128i LoadWords(const uint64_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline void StoreWords(uint64_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

#elif defined(CVM_SIMD_NEON)

inline bool AllZero128(uint64x2_t v) { return vmaxvq_u32(vreinterpretq_u32_u64(v)) == 0; }

#endif

}  // namespace

const char* KernelTargetName() {
#if defined(CVM_SIMD_SSE2)
  return "sse2";
#elif defined(CVM_SIMD_NEON)
  return "neon";
#else
  return "word";
#endif
}

// ---- Emptiness / intersection tests ----

bool AnyWordNonzero(const uint64_t* w, size_t n) {
  size_t i = 0;
#if defined(CVM_SIMD_SSE2)
  for (; i + 4 <= n; i += 4) {
    if (!AllZero128(_mm_or_si128(LoadWords(w + i), LoadWords(w + i + 2)))) {
      return true;
    }
  }
#elif defined(CVM_SIMD_NEON)
  for (; i + 4 <= n; i += 4) {
    if (!AllZero128(vorrq_u64(vld1q_u64(w + i), vld1q_u64(w + i + 2)))) {
      return true;
    }
  }
#endif
  for (; i < n; ++i) {
    if (w[i] != 0) {
      return true;
    }
  }
  return false;
}

bool AnyCommonBit(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
#if defined(CVM_SIMD_SSE2)
  for (; i + 4 <= n; i += 4) {
    const __m128i lo = _mm_and_si128(LoadWords(a + i), LoadWords(b + i));
    const __m128i hi = _mm_and_si128(LoadWords(a + i + 2), LoadWords(b + i + 2));
    if (!AllZero128(_mm_or_si128(lo, hi))) {
      return true;
    }
  }
#elif defined(CVM_SIMD_NEON)
  for (; i + 4 <= n; i += 4) {
    const uint64x2_t lo = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    const uint64x2_t hi = vandq_u64(vld1q_u64(a + i + 2), vld1q_u64(b + i + 2));
    if (!AllZero128(vorrq_u64(lo, hi))) {
      return true;
    }
  }
#endif
  for (; i < n; ++i) {
    if (a[i] & b[i]) {
      return true;
    }
  }
  return false;
}

uint64_t PopcountWords(const uint64_t* w, size_t n) {
  // Hardware popcount via the builtin is already the fast path on every
  // target; there is no SSE2/NEON win to be had over it.
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

// ---- Bulk word ops ----

void UnionWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
#if defined(CVM_SIMD_SSE2)
  for (; i + 2 <= n; i += 2) {
    StoreWords(dst + i, _mm_or_si128(LoadWords(dst + i), LoadWords(src + i)));
  }
#elif defined(CVM_SIMD_NEON)
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
#endif
  for (; i < n; ++i) {
    dst[i] |= src[i];
  }
}

void IntersectWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
#if defined(CVM_SIMD_SSE2)
  for (; i + 2 <= n; i += 2) {
    StoreWords(dst + i, _mm_and_si128(LoadWords(dst + i), LoadWords(src + i)));
  }
#elif defined(CVM_SIMD_NEON)
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
#endif
  for (; i < n; ++i) {
    dst[i] &= src[i];
  }
}

// ---- Set-bit enumeration ----

void AppendCommonBits(const uint64_t* a, const uint64_t* b, size_t n,
                      std::vector<uint32_t>* out) {
  // Access bitmaps are skewed toward all-zero intersections, so the SIMD win
  // is skipping empty 4-word blocks in one test; set words fall back to the
  // ctz extraction (which preserves ascending output order exactly).
  size_t i = 0;
#if defined(CVM_SIMD_SSE2)
  for (; i + 4 <= n; i += 4) {
    const __m128i lo = _mm_and_si128(LoadWords(a + i), LoadWords(b + i));
    const __m128i hi = _mm_and_si128(LoadWords(a + i + 2), LoadWords(b + i + 2));
    if (AllZero128(_mm_or_si128(lo, hi))) {
      continue;
    }
    for (size_t j = i; j < i + 4; ++j) {
      AppendBitsOfWord(a[j] & b[j], static_cast<uint32_t>(j * 64), out);
    }
  }
#elif defined(CVM_SIMD_NEON)
  for (; i + 4 <= n; i += 4) {
    const uint64x2_t lo = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    const uint64x2_t hi = vandq_u64(vld1q_u64(a + i + 2), vld1q_u64(b + i + 2));
    if (AllZero128(vorrq_u64(lo, hi))) {
      continue;
    }
    for (size_t j = i; j < i + 4; ++j) {
      AppendBitsOfWord(a[j] & b[j], static_cast<uint32_t>(j * 64), out);
    }
  }
#endif
  for (; i < n; ++i) {
    AppendBitsOfWord(a[i] & b[i], static_cast<uint32_t>(i * 64), out);
  }
}

void AppendSetBits(const uint64_t* w, size_t n, std::vector<uint32_t>* out) {
  size_t i = 0;
#if defined(CVM_SIMD_SSE2)
  for (; i + 4 <= n; i += 4) {
    if (AllZero128(_mm_or_si128(LoadWords(w + i), LoadWords(w + i + 2)))) {
      continue;
    }
    for (size_t j = i; j < i + 4; ++j) {
      AppendBitsOfWord(w[j], static_cast<uint32_t>(j * 64), out);
    }
  }
#elif defined(CVM_SIMD_NEON)
  for (; i + 4 <= n; i += 4) {
    if (AllZero128(vorrq_u64(vld1q_u64(w + i), vld1q_u64(w + i + 2)))) {
      continue;
    }
    for (size_t j = i; j < i + 4; ++j) {
      AppendBitsOfWord(w[j], static_cast<uint32_t>(j * 64), out);
    }
  }
#endif
  for (; i < n; ++i) {
    AppendBitsOfWord(w[i], static_cast<uint32_t>(i * 64), out);
  }
}

// ---- Twin-vs-page diff construction ----

void AppendUnequalWords32(const uint8_t* a, const uint8_t* b, size_t n32,
                          std::vector<uint32_t>* out) {
  size_t w = 0;
#if defined(CVM_SIMD_SSE2)
  for (; w + 4 <= n32; w += 4) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + w * 4));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + w * 4));
    const int eq_mask = _mm_movemask_epi8(_mm_cmpeq_epi32(va, vb));
    if (eq_mask == 0xFFFF) {
      continue;  // All four 32-bit words equal — the overwhelmingly common case.
    }
    for (size_t j = 0; j < 4; ++j) {
      if (((eq_mask >> (4 * j)) & 0xF) != 0xF) {
        out->push_back(static_cast<uint32_t>(w + j));
      }
    }
  }
#elif defined(CVM_SIMD_NEON)
  for (; w + 4 <= n32; w += 4) {
    const uint32x4_t va = vreinterpretq_u32_u8(vld1q_u8(a + w * 4));
    const uint32x4_t vb = vreinterpretq_u32_u8(vld1q_u8(b + w * 4));
    const uint32x4_t eq = vceqq_u32(va, vb);
    if (vminvq_u32(eq) == 0xFFFFFFFFu) {
      continue;
    }
    uint32_t lanes[4];
    vst1q_u32(lanes, eq);
    for (size_t j = 0; j < 4; ++j) {
      if (lanes[j] != 0xFFFFFFFFu) {
        out->push_back(static_cast<uint32_t>(w + j));
      }
    }
  }
#else
  // 64-bit word path: compare two 32-bit words per load.
  for (; w + 2 <= n32; w += 2) {
    uint64_t wa;
    uint64_t wb;
    std::memcpy(&wa, a + w * 4, 8);
    std::memcpy(&wb, b + w * 4, 8);
    if (wa == wb) {
      continue;
    }
    const uint64_t diff = wa ^ wb;
    if (static_cast<uint32_t>(diff) != 0) {
      out->push_back(static_cast<uint32_t>(w));
    }
    if ((diff >> 32) != 0) {
      out->push_back(static_cast<uint32_t>(w + 1));
    }
  }
#endif
  for (; w < n32; ++w) {
    uint32_t va;
    uint32_t vb;
    std::memcpy(&va, a + w * 4, 4);
    std::memcpy(&vb, b + w * 4, 4);
    if (va != vb) {
      out->push_back(static_cast<uint32_t>(w));
    }
  }
}

// ---- Portable references ----

namespace scalar {

CVM_PERF_NOINLINE bool AnyWordNonzero(const uint64_t* w, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (w[i] != 0) {
      return true;
    }
  }
  return false;
}

CVM_PERF_NOINLINE bool AnyCommonBit(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] & b[i]) {
      return true;
    }
  }
  return false;
}

CVM_PERF_NOINLINE uint64_t PopcountWords(const uint64_t* w, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

CVM_PERF_NOINLINE void UnionWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] |= src[i];
  }
}

CVM_PERF_NOINLINE void IntersectWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] &= src[i];
  }
}

CVM_PERF_NOINLINE void AppendCommonBits(const uint64_t* a, const uint64_t* b, size_t n,
                                        std::vector<uint32_t>* out) {
  for (size_t i = 0; i < n; ++i) {
    AppendBitsOfWord(a[i] & b[i], static_cast<uint32_t>(i * 64), out);
  }
}

CVM_PERF_NOINLINE void AppendSetBits(const uint64_t* w, size_t n,
                                     std::vector<uint32_t>* out) {
  for (size_t i = 0; i < n; ++i) {
    AppendBitsOfWord(w[i], static_cast<uint32_t>(i * 64), out);
  }
}

CVM_PERF_NOINLINE void AppendUnequalWords32(const uint8_t* a, const uint8_t* b, size_t n32,
                                            std::vector<uint32_t>* out) {
  // The seed's MakeDiff inner loop, verbatim: one memcpy'd 32-bit compare
  // per word.
  for (size_t w = 0; w < n32; ++w) {
    uint32_t va;
    uint32_t vb;
    std::memcpy(&va, a + w * 4, 4);
    std::memcpy(&vb, b + w * 4, 4);
    if (va != vb) {
      out->push_back(static_cast<uint32_t>(w));
    }
  }
}

}  // namespace scalar

}  // namespace perf
}  // namespace cvm
