// Steady-state allocation control for the hot paths: object pools that
// recycle interval-tracking structures across epochs, and a flat sorted set
// that replaces std::set for per-interval page tracking.
//
// The contract these types exist to meet (pinned by
// tests/race/simd_kernels_test.cc): once a workload reaches steady state —
// every epoch touching the same pages as the last — the pools report zero
// misses, i.e. the hot path performs no allocation beyond what vectors
// already cached.
//
// Layering: like kernels.h, this unit depends only on the standard library.
#ifndef CVM_PERF_ARENA_H_
#define CVM_PERF_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace cvm {
namespace perf {

struct PoolStats {
  // Acquire satisfied from the free list (no allocation).
  uint64_t hits = 0;
  // Acquire that had to construct a fresh object.
  uint64_t misses = 0;
  // Release dropped because the pool was at capacity.
  uint64_t discards = 0;
};

// A free-list recycler for T. Acquire() pops a previously released object
// (caller resets it) or default-constructs one; Release() parks the object
// for reuse. T must be movable. The pool keeps at most `max_free` parked
// objects so a one-off burst cannot pin memory forever.
//
// Not thread-safe: each pool lives inside one engine (BitmapStore,
// IntervalLog, detector shard) whose own locking already serializes access.
template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(size_t max_free = 4096) : max_free_(max_free) {}

  T Acquire() {
    if (!free_.empty()) {
      T obj = std::move(free_.back());
      free_.pop_back();
      ++stats_.hits;
      return obj;
    }
    ++stats_.misses;
    return T{};
  }

  void Release(T obj) {
    if (free_.size() >= max_free_) {
      ++stats_.discards;
      return;
    }
    free_.push_back(std::move(obj));
  }

  const PoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PoolStats{}; }
  size_t free_count() const { return free_.size(); }

 private:
  std::vector<T> free_;
  size_t max_free_;
  PoolStats stats_;
};

// A sorted-unique flat set of integer ids, replacing std::set on the
// access-tracking hot path (Node's cur_reads_/cur_writes_). Insertion is
// O(n) worst case but the working sets are small (pages touched per
// interval) and — unlike std::set — clear() keeps the heap buffer, so a
// steady-state interval inserts into cached capacity and allocates nothing.
template <typename Id>
class FlatIdSet {
 public:
  using const_iterator = typename std::vector<Id>::const_iterator;

  // Returns true if the id was newly inserted.
  bool Insert(Id id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it != ids_.end() && *it == id) {
      return false;
    }
    ids_.insert(it, id);
    return true;
  }

  bool Contains(Id id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  void Clear() { ids_.clear(); }  // Keeps capacity.
  bool Empty() const { return ids_.empty(); }
  size_t Size() const { return ids_.size(); }
  size_t Capacity() const { return ids_.capacity(); }

  // Ascending iteration — same order std::set gave callers.
  const_iterator begin() const { return ids_.begin(); }
  const_iterator end() const { return ids_.end(); }
  const std::vector<Id>& ids() const { return ids_; }

 private:
  std::vector<Id> ids_;
};

}  // namespace perf
}  // namespace cvm

#endif  // CVM_PERF_ARENA_H_
