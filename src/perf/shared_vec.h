// Refcounted immutable payload buffers — the zero-copy half of the hot-path
// work. Large message payloads (page contents, encoded-bitmap entry lists)
// are wrapped in a SharedVec so that every place a Message is copied — the
// reliable transport's held/retransmission frames, handlers parking a reply,
// dispatch fan-out — bumps a reference count instead of copying the bytes.
//
// Ownership rules (documented in docs/PERFORMANCE.md):
//  * The contents are immutable once wrapped. Anyone needing to mutate must
//    TakeOrCopy() first.
//  * TakeOrCopy() steals the underlying vector when this handle is the last
//    owner (the common clean-delivery path: one installer, zero copies) and
//    deep-copies only when retransmission state still holds a reference.
//  * Wire-byte accounting reads through the handle (size()/operator*), so
//    modeled bytes and simulated time are identical to the by-value design.
//
// Layering: stdlib-only, like the rest of src/perf/.
#ifndef CVM_PERF_SHARED_VEC_H_
#define CVM_PERF_SHARED_VEC_H_

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

namespace cvm {
namespace perf {

template <typename T>
class SharedVec {
 public:
  SharedVec() = default;

  // Implicit on purpose: call sites keep building plain vectors and hand
  // them over at the message boundary.
  SharedVec(std::vector<T> contents)  // NOLINT(google-explicit-constructor)
      : buf_(std::make_shared<std::vector<T>>(std::move(contents))) {}

  SharedVec(std::initializer_list<T> init)
      : buf_(std::make_shared<std::vector<T>>(init)) {}

  // Read access. A default-constructed handle reads as an empty vector.
  const std::vector<T>& operator*() const { return buf_ ? *buf_ : EmptyVec(); }
  const std::vector<T>* operator->() const { return &**this; }
  size_t size() const { return buf_ ? buf_->size() : 0; }
  bool empty() const { return size() == 0; }

  // Number of handles sharing the buffer (0 for an empty handle).
  long use_count() const { return buf_ ? buf_.use_count() : 0; }

  // Takes the contents out: a move when this is the sole owner, a copy when
  // other handles (e.g. a retransmission hold) still reference the buffer.
  // The handle is empty afterwards either way.
  std::vector<T> TakeOrCopy() {
    if (buf_ == nullptr) {
      return {};
    }
    std::vector<T> out;
    if (buf_.use_count() == 1) {
      out = std::move(*buf_);
    } else {
      out = *buf_;
    }
    buf_.reset();
    return out;
  }

 private:
  static const std::vector<T>& EmptyVec() {
    static const std::vector<T> kEmpty;
    return kEmpty;
  }

  std::shared_ptr<std::vector<T>> buf_;
};

}  // namespace perf
}  // namespace cvm

#endif  // CVM_PERF_SHARED_VEC_H_
