// Word/SIMD kernels for the detector and coherence hot paths: bitmap
// intersection (§4 step 5's constant-time-per-page compare), set-bit
// enumeration (racing-word extraction, codec encoding), and twin-vs-page
// diff construction/application (§6.5 multi-writer machinery).
//
// Every kernel has two faces:
//   perf::Xxx         — the active target (SSE2 / NEON / 64-bit word,
//                       selected at compile time by src/perf/simd.h);
//   perf::scalar::Xxx — the portable word-at-a-time reference, kept
//                       non-vectorized so differential tests and
//                       bench_hotpath compare against an honest baseline.
// Both faces are bit-exact: same results, same output order, for any input.
// That is what lets the report-equivalence and protocol-parity suites stay
// byte-identical with the kernels enabled.
//
// Layering: this unit sits below everything (only <cstdint>/<vector>); raw
// intrinsics live only here and in kernels.cc (tools/check_simd_isolation.py
// enforces it).
#ifndef CVM_PERF_KERNELS_H_
#define CVM_PERF_KERNELS_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace cvm {
namespace perf {

// Compile-time-selected kernel flavor; "sse2", "neon", or "word" (the
// portable 64-bit fallback). Recorded in BENCH_hotpath.json cells.
const char* KernelTargetName();

// ---- Bitmap kernels (operands are 64-bit word arrays, bit i of word w is
// bit index w*64+i; trailing bits past the logical size are zero) ----

// True iff any word is nonzero (fast emptiness test).
bool AnyWordNonzero(const uint64_t* w, size_t n);

// True iff (a[i] & b[i]) != 0 for some i — the paper's per-page bitmap
// comparison, the single hottest detector operation.
bool AnyCommonBit(const uint64_t* a, const uint64_t* b, size_t n);

// Total set bits.
uint64_t PopcountWords(const uint64_t* w, size_t n);

// dst[i] |= src[i] / dst[i] &= src[i].
void UnionWords(uint64_t* dst, const uint64_t* src, size_t n);
void IntersectWords(uint64_t* dst, const uint64_t* src, size_t n);

// Appends the ascending bit indices of (a[i] & b[i]) to *out — the racing
// words of a true-sharing page.
void AppendCommonBits(const uint64_t* a, const uint64_t* b, size_t n,
                      std::vector<uint32_t>* out);

// Appends the ascending bit indices of all set bits to *out.
void AppendSetBits(const uint64_t* w, size_t n, std::vector<uint32_t>* out);

// ---- Diff kernels (operands are byte buffers of n32 32-bit words; no
// alignment requirement — twins/frames are arbitrary vector storage) ----

// Appends the ascending indices of 32-bit words where a and b differ — the
// twin-vs-page compare behind MakeDiff.
void AppendUnequalWords32(const uint8_t* a, const uint8_t* b, size_t n32,
                          std::vector<uint32_t>* out);

// Applies n (word-index, value) pairs onto frame — diff application. The
// scatter itself is inherently scalar; the kernel's job is hoisting the
// per-word bounds check out of the loop. PairT needs .word and .value
// members (DiffWord, without this header depending on src/mem/).
// Out-of-range pairs are reported via the return value (count applied);
// callers CHECK it equals n.
template <typename PairT>
size_t ScatterWords32(uint8_t* frame, size_t frame_bytes, const PairT* pairs, size_t n) {
  const size_t num_words = frame_bytes / 4;
  for (size_t i = 0; i < n; ++i) {
    if (pairs[i].word >= num_words) {
      return i;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    uint32_t value = pairs[i].value;
    std::memcpy(frame + static_cast<size_t>(pairs[i].word) * 4, &value, 4);
  }
  return n;
}

// ---- Portable word-at-a-time references (differential-test + bench
// baseline; semantically identical to the active kernels) ----
namespace scalar {

bool AnyWordNonzero(const uint64_t* w, size_t n);
bool AnyCommonBit(const uint64_t* a, const uint64_t* b, size_t n);
uint64_t PopcountWords(const uint64_t* w, size_t n);
void UnionWords(uint64_t* dst, const uint64_t* src, size_t n);
void IntersectWords(uint64_t* dst, const uint64_t* src, size_t n);
void AppendCommonBits(const uint64_t* a, const uint64_t* b, size_t n,
                      std::vector<uint32_t>* out);
void AppendSetBits(const uint64_t* w, size_t n, std::vector<uint32_t>* out);
// The seed's MakeDiff inner loop: per-word memcpy + compare.
void AppendUnequalWords32(const uint8_t* a, const uint8_t* b, size_t n32,
                          std::vector<uint32_t>* out);

}  // namespace scalar

}  // namespace perf
}  // namespace cvm

#endif  // CVM_PERF_KERNELS_H_
