// SIMD target selection for the hot-path kernels (src/perf/kernels.*).
//
// Exactly one of CVM_SIMD_SSE2 / CVM_SIMD_NEON / CVM_SIMD_SCALAR is defined
// to 1 at compile time. This header (and kernels.cc) is the ONLY place in
// the tree allowed to include vendor intrinsic headers or use raw
// intrinsics — tools/check_simd_isolation.py greps the rest of the tree for
// leaks. To add a target: add a detection branch here, an implementation
// block per kernel in kernels.cc, and a name in KernelTargetName().
//
// -DCVM_SCALAR_KERNELS=ON (CMake) forces the portable 64-bit-word path on
// any host, which is how the differential tests prove the SIMD paths are
// drop-in replacements.
#ifndef CVM_PERF_SIMD_H_
#define CVM_PERF_SIMD_H_

#if defined(CVM_FORCE_SCALAR_KERNELS)
#define CVM_SIMD_SCALAR 1
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define CVM_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__)
// aarch64 only: the kernels use the A64 horizontal reductions (vmaxvq/
// vminvq), which 32-bit ARM NEON lacks; those hosts take the word path.
#define CVM_SIMD_NEON 1
#include <arm_neon.h>
#else
#define CVM_SIMD_SCALAR 1
#endif

#endif  // CVM_PERF_SIMD_H_
