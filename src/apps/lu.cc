#include "src/apps/lu.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace cvm {

InstructionMix LuApp::instruction_mix() const {
  // LU is not in the paper's Table 2; this mix is representative of a
  // Splash2 kernel of its size.
  InstructionMix mix;
  mix.stack = 410;
  mix.static_data = 1380;
  mix.library = 48717;
  mix.cvm = 3910;
  mix.candidate = 190;
  mix.candidate_private_interproc = 0.55;
  return mix;
}

float LuApp::InitialValue(int row, int col) const {
  Rng rng(params_.seed + static_cast<uint64_t>(row) * 7919 + static_cast<uint64_t>(col));
  float value = static_cast<float>(rng.NextDouble()) - 0.5f;
  if (row == col) {
    value += static_cast<float>(params_.n);  // Diagonal dominance: stable without pivoting.
  }
  return value;
}

void LuApp::Setup(DsmSystem& system) {
  CVM_CHECK_GT(params_.block, 0);
  CVM_CHECK_EQ(params_.n % params_.block, 0);
  a_ = SharedArray<float>::Alloc(system, "lu_a",
                                 static_cast<size_t>(params_.n) * params_.n);
}

void LuApp::Run(NodeContext& ctx) {
  const int n = params_.n;
  const int b = params_.block;
  const int nb = n / b;
  const int p = ctx.num_nodes();

  // Parallel init: each node fills its own blocks.
  for (int bi = 0; bi < nb; ++bi) {
    for (int bj = 0; bj < nb; ++bj) {
      if (OwnerOf(bi, bj, p) != ctx.id()) {
        continue;
      }
      for (int i = bi * b; i < (bi + 1) * b; ++i) {
        for (int j = bj * b; j < (bj + 1) * b; ++j) {
          a_.Set(ctx, Index(i, j), InitialValue(i, j));
        }
      }
    }
  }
  ctx.Barrier();

  for (int k = 0; k < nb; ++k) {
    const int d = k * b;
    // Phase 1: factorize the diagonal block (its owner only).
    if (OwnerOf(k, k, p) == ctx.id()) {
      for (int i = d; i < d + b; ++i) {
        for (int r = i + 1; r < d + b; ++r) {
          const float l = a_.Get(ctx, Index(r, i)) / a_.Get(ctx, Index(i, i));
          a_.Set(ctx, Index(r, i), l);
          for (int c = i + 1; c < d + b; ++c) {
            a_.Set(ctx, Index(r, c), a_.Get(ctx, Index(r, c)) - l * a_.Get(ctx, Index(i, c)));
          }
          ctx.Compute(static_cast<uint64_t>(b));
        }
      }
    }
    ctx.Barrier();

    // Phase 2: perimeter — row blocks (k, j>k) and column blocks (i>k, k).
    for (int bj = k + 1; bj < nb; ++bj) {
      if (OwnerOf(k, bj, p) != ctx.id()) {
        continue;
      }
      for (int i = d; i < d + b; ++i) {
        for (int r = i + 1; r < d + b; ++r) {
          const float l = a_.Get(ctx, Index(r, i));
          for (int c = bj * b; c < (bj + 1) * b; ++c) {
            a_.Set(ctx, Index(r, c), a_.Get(ctx, Index(r, c)) - l * a_.Get(ctx, Index(i, c)));
          }
          ctx.Compute(static_cast<uint64_t>(b));
        }
      }
    }
    for (int bi = k + 1; bi < nb; ++bi) {
      if (OwnerOf(bi, k, p) != ctx.id()) {
        continue;
      }
      for (int i = d; i < d + b; ++i) {
        for (int r = bi * b; r < (bi + 1) * b; ++r) {
          const float l = a_.Get(ctx, Index(r, i)) / a_.Get(ctx, Index(i, i));
          a_.Set(ctx, Index(r, i), l);
          for (int c = i + 1; c < d + b; ++c) {
            a_.Set(ctx, Index(r, c), a_.Get(ctx, Index(r, c)) - l * a_.Get(ctx, Index(i, c)));
          }
          ctx.Compute(static_cast<uint64_t>(b));
        }
      }
    }
    ctx.Barrier();

    // Phase 3: interior blocks (i>k, j>k): A_ij -= L_ik * U_kj.
    for (int bi = k + 1; bi < nb; ++bi) {
      for (int bj = k + 1; bj < nb; ++bj) {
        if (OwnerOf(bi, bj, p) != ctx.id()) {
          continue;
        }
        for (int r = bi * b; r < (bi + 1) * b; ++r) {
          for (int c = bj * b; c < (bj + 1) * b; ++c) {
            float acc = a_.Get(ctx, Index(r, c));
            for (int i = d; i < d + b; ++i) {
              acc -= a_.Get(ctx, Index(r, i)) * a_.Get(ctx, Index(i, c));
            }
            a_.Set(ctx, Index(r, c), acc);
          }
          ctx.Compute(static_cast<uint64_t>(b) * b);
        }
      }
    }
    ctx.Barrier();
  }

  if (ctx.id() == 0) {
    // Serial reference: plain right-looking LU over the same input.
    std::vector<float> m(static_cast<size_t>(n) * n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        m[Index(i, j)] = InitialValue(i, j);
      }
    }
    for (int i = 0; i < n; ++i) {
      for (int r = i + 1; r < n; ++r) {
        const float l = m[Index(r, i)] / m[Index(i, i)];
        m[Index(r, i)] = l;
        for (int c = i + 1; c < n; ++c) {
          m[Index(r, c)] -= l * m[Index(i, c)];
        }
      }
    }
    bool ok = true;
    for (int i = 0; i < n && ok; ++i) {
      for (int j = 0; j < n && ok; ++j) {
        const float got = a_.Get(ctx, Index(i, j));
        const float want = m[Index(i, j)];
        ok = std::fabs(got - want) <= 1e-3f * (1.0f + std::fabs(want));
      }
    }
    verified_ok_ = ok;
  }
}

}  // namespace cvm
