// TSP: branch-and-bound traveling salesman, the paper's lock-based app with
// *intentional* data races. A lock-protected work queue hands out tour
// prefixes; workers expand them depth-first, pruning against the global tour
// bound. The bound is written under a lock but read WITHOUT synchronization
// inside the search loop — a deliberate performance trick: a stale bound
// only causes redundant work, never an incorrect result. The detector must
// report these read-write races (the paper's first true positive).
#ifndef CVM_APPS_TSP_H_
#define CVM_APPS_TSP_H_

#include <string>
#include <vector>

#include "src/apps/app.h"

namespace cvm {

class TspApp : public ParallelApp {
 public:
  struct Params {
    int num_cities = 12;
    int prefix_depth = 3;  // Length of the enqueued tour prefixes.
    uint64_t seed = 42;
    uint64_t page_size = 4096;  // Distance-matrix rows are page-padded.
  };

  explicit TspApp(Params params) : params_(params) {}

  std::string name() const override { return "TSP"; }
  std::string input_description() const override {
    return std::to_string(params_.num_cities) + " cities";
  }
  std::string sync_description() const override { return "lock"; }
  InstructionMix instruction_mix() const override;

  void Setup(DsmSystem& system) override;
  void Run(NodeContext& ctx) override;
  bool Verify() const override { return verified_ok_; }

  // Address of the racy bound, for tests and the replay example.
  GlobalAddr bound_addr() const { return min_tour_.addr(); }

 private:
  static constexpr LockId kQueueLock = 0;
  static constexpr LockId kBoundLock = 1;
  static constexpr int32_t kInfinity = 0x3fffffff;

  // Deterministic distance matrix for the given seed.
  std::vector<int32_t> MakeDistances() const;
  // Serial branch-and-bound for verification.
  int32_t SolveSerial() const;

  Params params_;
  int num_tasks_ = 0;
  size_t dist_stride_ = 0;  // Words per padded distance-matrix row.
  SharedArray<int32_t> dist_;
  SharedArray<int32_t> queue_;     // num_tasks_ x prefix_depth city ids.
  SharedVar<int32_t> queue_head_;  // Guarded by kQueueLock.
  SharedVar<int32_t> min_tour_;    // Written under kBoundLock, read racily.
  SharedArray<int32_t> best_tour_; // Guarded by kBoundLock.
  bool verified_ok_ = false;
};

}  // namespace cvm

#endif  // CVM_APPS_TSP_H_
