// Workload driver: runs an application twice — instrumented (race detection
// on) and unaltered (detection off) — and derives every metric the paper's
// evaluation reports: slowdown (Table 1, Figure 4), the Figure 3 overhead
// breakdown, and the Table 3 dynamic metrics.
#ifndef CVM_APPS_WORKLOAD_H_
#define CVM_APPS_WORKLOAD_H_

#include <string>

#include "src/apps/app.h"
#include "src/dsm/dsm.h"
#include "src/dsm/options.h"

namespace cvm {

struct WorkloadResult {
  std::string app_name;
  std::string input;
  std::string sync;
  bool verified = false;

  RunResult detect;  // Instrumented run (race detection on).
  RunResult base;    // Unaltered run (race detection off).

  // Table 1 "Slowdown": instrumented vs unaltered simulated runtime.
  double Slowdown() const {
    return base.sim_time_ns > 0 ? detect.sim_time_ns / base.sim_time_ns : 0.0;
  }

  // Figure 3: the share of the unaltered runtime added by `bucket`.
  // The total added time (detect - base, on the critical path) is split
  // across buckets in proportion to the per-node overhead sums.
  double OverheadFraction(Bucket bucket) const;
  double TotalOverheadFraction() const { return Slowdown() - 1.0; }

  // Table 3 columns.
  double IntervalsUsed() const;   // % intervals in >=1 concurrent overlapping pair.
  double BitmapsUsed() const;     // % of recorded bitmaps fetched for checks.
  double MsgOverhead() const;      // Read-notice bytes vs ALL other traffic.
  double MsgOverheadSyncOnly() const;  // ...vs synchronization messages only.
  double SharedPerSecond() const;
  double PrivatePerSecond() const;

  // Table 1 "Memory Size" in kbytes.
  double MemoryKb() const { return static_cast<double>(detect.shared_bytes_used) / 1024.0; }
  double IntervalsPerBarrier(int num_nodes) const {
    return detect.IntervalsPerBarrier(num_nodes);
  }
};

// Runs the app from `factory` under `options` twice (detection on and off)
// and gathers the metrics. The options' race_detection flag is overridden
// per run.
WorkloadResult RunWorkload(const AppFactory& factory, DsmOptions options);

// Runs only once with the given options (used by ablation benches that do
// not need the base run).
WorkloadResult RunWorkloadDetectOnly(const AppFactory& factory, DsmOptions options);

// Runs the workload `repeats` times and returns the run with the median
// slowdown. Lock-based applications (TSP above all) do schedule-dependent
// amounts of work — a stale tour bound means extra search — so single-run
// slowdowns are noisy; the paper's measurements face the same effect.
WorkloadResult RunWorkloadMedian(const AppFactory& factory, const DsmOptions& options,
                                 int repeats);

}  // namespace cvm

#endif  // CVM_APPS_WORKLOAD_H_
