#include "src/apps/fft.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace cvm {
namespace {

bool IsPowerOfTwo(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

void Radix2Fft(std::vector<std::complex<float>>& data) {
  const size_t n = data.size();
  CVM_CHECK(IsPowerOfTwo(static_cast<int>(n)));
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const float angle = -2.0f * static_cast<float>(M_PI) / static_cast<float>(len);
    const std::complex<float> wn(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<float> w(1.0f, 0.0f);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<float> u = data[i + k];
        const std::complex<float> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wn;
      }
    }
  }
}

void Radix2FftLocal(LocalArray<float>& re, LocalArray<float>& im) {
  const size_t n = re.size();
  CVM_CHECK_EQ(n, im.size());
  CVM_CHECK(IsPowerOfTwo(static_cast<int>(n)));
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      const float tr = re.Get(i);
      const float ti = im.Get(i);
      re.Set(i, re.Get(j));
      im.Set(i, im.Get(j));
      re.Set(j, tr);
      im.Set(j, ti);
    }
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const float angle = -2.0f * static_cast<float>(M_PI) / static_cast<float>(len);
    const std::complex<float> wn(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<float> w(1.0f, 0.0f);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<float> u(re.Get(i + k), im.Get(i + k));
        const std::complex<float> v =
            std::complex<float>(re.Get(i + k + len / 2), im.Get(i + k + len / 2)) * w;
        const std::complex<float> sum = u + v;
        const std::complex<float> diff = u - v;
        re.Set(i + k, sum.real());
        im.Set(i + k, sum.imag());
        re.Set(i + k + len / 2, diff.real());
        im.Set(i + k + len / 2, diff.imag());
        w *= wn;
      }
    }
  }
}

namespace {

// One line's staging through instrumented private buffers. The line data and
// the twiddle table live in LocalArrays: the gather/scatter copies and the
// per-butterfly twiddle loads are exactly the pointer-based accesses ATOM
// keeps instrumented, while the butterfly arithmetic itself (registers and
// provably-stack temporaries) is modelled as compute time. The kernel folds
// twiddles incrementally with the same values held in the table.
class LineStage {
 public:
  LineStage(NodeContext& ctx, int len)
      : len_(len),
        lre_(ctx, static_cast<size_t>(len)),
        lim_(ctx, static_cast<size_t>(len)),
        twiddle_(ctx, static_cast<size_t>(len)),
        line_(static_cast<size_t>(len)) {
    for (int k = 0; k < len / 2; ++k) {
      const float angle = -2.0f * static_cast<float>(M_PI) * static_cast<float>(k) /
                          static_cast<float>(len);
      twiddle_.Set(static_cast<size_t>(2 * k), std::cos(angle));
      twiddle_.Set(static_cast<size_t>(2 * k) + 1, std::sin(angle));
    }
  }

  template <typename Get>
  void LoadFrom(NodeContext& ctx, const Get& get) {
    (void)ctx;
    for (int i = 0; i < len_; ++i) {
      const std::complex<float> v = get(i);
      lre_.Set(i, v.real());
      lim_.Set(i, v.imag());
    }
    for (int i = 0; i < len_; ++i) {
      line_[i] = {lre_.Get(i), lim_.Get(i)};
    }
  }

  void Transform(NodeContext& ctx) {
    // Per-butterfly twiddle loads (n log n of them), then the transform.
    for (int len = 2; len <= len_; len <<= 1) {
      const int step = len_ / len;
      for (int i = 0; i < len_; i += len) {
        for (int k = 0; k < len / 2; ++k) {
          (void)twiddle_.Get(static_cast<size_t>(2 * k * step));
          (void)twiddle_.Get(static_cast<size_t>(2 * k * step) + 1);
        }
      }
    }
    Radix2Fft(line_);
    ctx.Compute(static_cast<uint64_t>(len_) * 55);
  }

  template <typename Put>
  void StoreTo(NodeContext& ctx, const Put& put) {
    (void)ctx;
    for (int i = 0; i < len_; ++i) {
      lre_.Set(i, line_[i].real());
      lim_.Set(i, line_[i].imag());
    }
    for (int i = 0; i < len_; ++i) {
      put(i, std::complex<float>(lre_.Get(i), lim_.Get(i)));
    }
  }

 private:
  int len_;
  LocalArray<float> lre_;
  LocalArray<float> lim_;
  LocalArray<float> twiddle_;
  std::vector<std::complex<float>> line_;
};

}  // namespace

InstructionMix FftApp::instruction_mix() const {
  // Calibrated to Table 2's FFT row: 1285 stack, 1496 static, 124716
  // library, 3910 CVM, 261 instrumented candidates.
  InstructionMix mix;
  mix.stack = 1285;
  mix.static_data = 1496;
  mix.library = 124716;
  mix.cvm = 3910;
  mix.candidate = 261;
  mix.candidate_private_block = 0.0;
  mix.candidate_private_interproc = 0.6;
  return mix;
}

float FftApp::InitialRe(int row, int col) {
  return static_cast<float>((row * 131 + col * 37) % 251) / 251.0f - 0.5f;
}

float FftApp::InitialIm(int row, int col) {
  return static_cast<float>((row * 67 + col * 173) % 241) / 241.0f - 0.5f;
}

void FftApp::Setup(DsmSystem& system) {
  CVM_CHECK(IsPowerOfTwo(params_.rows));
  CVM_CHECK(IsPowerOfTwo(params_.cols));
  const size_t words = static_cast<size_t>(params_.rows) * params_.cols;
  re_ = SharedArray<float>::Alloc(system, "fft_re", words);
  im_ = SharedArray<float>::Alloc(system, "fft_im", words);
  // A small twiddle table sits between the matrices, so the transpose
  // scratch is NOT page-aligned: adjacent nodes' row blocks straddle pages.
  // This is the layout accident behind FFT's false sharing (Table 3: 15% of
  // intervals in overlapping pairs, 1% of bitmaps fetched, zero races).
  SharedArray<float>::Alloc(system, "fft_twiddle", 36);
  tre_ = SharedArray<float>::Alloc(system, "fft_tre", words, /*page_align=*/false);
  tim_ = SharedArray<float>::Alloc(system, "fft_tim", words, /*page_align=*/false);
}

void FftApp::Run(NodeContext& ctx) {
  const int p = ctx.num_nodes();
  const int rows_per_node = (params_.rows + p - 1) / p;
  const int row_first = ctx.id() * rows_per_node;
  const int row_last = std::min(params_.rows - 1, row_first + rows_per_node - 1);
  const int cols_per_node = (params_.cols + p - 1) / p;
  const int col_first = ctx.id() * cols_per_node;
  const int col_last = std::min(params_.cols - 1, col_first + cols_per_node - 1);

  // Parallel initialization: each node fills its own row block.
  for (int r = row_first; r <= row_last; ++r) {
    for (int c = 0; c < params_.cols; ++c) {
      re_.Set(ctx, Index(r, c), InitialRe(r, c));
      im_.Set(ctx, Index(r, c), InitialIm(r, c));
    }
  }
  ctx.Barrier();

  // Phase 1: transform own rows. Lines are staged through instrumented
  // private buffers (pointer-based copies ATOM keeps instrumented); the
  // butterfly arithmetic itself runs on registers/stack (statically
  // eliminated) and is modelled as compute time.
  {
    LineStage stage(ctx, params_.cols);
    for (int r = row_first; r <= row_last; ++r) {
      stage.LoadFrom(ctx, [&](int c) {
        return std::complex<float>(re_.Get(ctx, Index(r, c)), im_.Get(ctx, Index(r, c)));
      });
      stage.Transform(ctx);
      stage.StoreTo(ctx, [&](int c, const std::complex<float>& v) {
        re_.Set(ctx, Index(r, c), v.real());
        im_.Set(ctx, Index(r, c), v.imag());
      });
    }
  }
  ctx.Barrier();

  // Phase 2: transpose into the scratch matrix. Each node writes its own
  // row block of the transpose while reading columns of everyone's phase-1
  // output (remote read faults, no write ping-pong — the Splash2 pattern).
  // Packed rows put adjacent nodes' blocks on shared pages: barrier-
  // concurrent write-write page overlap that bitmap comparison clears as
  // false sharing.
  for (int c = col_first; c <= col_last; ++c) {
    for (int r = 0; r < params_.rows; ++r) {
      tre_.Set(ctx, TIndex(c, r), re_.Get(ctx, Index(r, c)));
      tim_.Set(ctx, TIndex(c, r), im_.Get(ctx, Index(r, c)));
    }
  }
  ctx.Barrier();

  // Phase 3: transform own rows of the transpose (= original columns).
  {
    LineStage stage(ctx, params_.rows);
    for (int c = col_first; c <= col_last; ++c) {
      stage.LoadFrom(ctx, [&](int r) {
        return std::complex<float>(tre_.Get(ctx, TIndex(c, r)), tim_.Get(ctx, TIndex(c, r)));
      });
      stage.Transform(ctx);
      stage.StoreTo(ctx, [&](int r, const std::complex<float>& v) {
        tre_.Set(ctx, TIndex(c, r), v.real());
        tim_.Set(ctx, TIndex(c, r), v.imag());
      });
    }
  }
  ctx.Barrier();

  if (ctx.id() == 0) {
    // Serial reference: same kernel, rows then columns.
    std::vector<std::vector<std::complex<float>>> m(
        params_.rows, std::vector<std::complex<float>>(params_.cols));
    for (int r = 0; r < params_.rows; ++r) {
      for (int c = 0; c < params_.cols; ++c) {
        m[r][c] = {InitialRe(r, c), InitialIm(r, c)};
      }
    }
    for (int r = 0; r < params_.rows; ++r) {
      Radix2Fft(m[r]);
    }
    std::vector<std::complex<float>> col(params_.rows);
    for (int c = 0; c < params_.cols; ++c) {
      for (int r = 0; r < params_.rows; ++r) {
        col[r] = m[r][c];
      }
      Radix2Fft(col);
      for (int r = 0; r < params_.rows; ++r) {
        m[r][c] = col[r];
      }
    }
    // The parallel result lives in the transposed scratch: element (r, c)
    // of the 2-D FFT is tre_/tim_[TIndex(c, r)].
    bool ok = true;
    for (int r = 0; r < params_.rows && ok; ++r) {
      for (int c = 0; c < params_.cols && ok; ++c) {
        const float got_re = tre_.Get(ctx, TIndex(c, r));
        const float got_im = tim_.Get(ctx, TIndex(c, r));
        ok = std::fabs(got_re - m[r][c].real()) < 1e-2f &&
             std::fabs(got_im - m[r][c].imag()) < 1e-2f;
      }
    }
    verified_ok_ = ok;
  }
}

}  // namespace cvm
