#include "src/apps/workload.h"
#include <algorithm>
#include <vector>

#include "src/common/check.h"

namespace cvm {
namespace {

RunResult RunOnce(const AppFactory& factory, const DsmOptions& options, std::string* name,
                  std::string* input, std::string* sync, bool* verified) {
  std::unique_ptr<ParallelApp> app = factory();
  CVM_CHECK(app != nullptr);
  if (name != nullptr) {
    *name = app->name();
    *input = app->input_description();
    *sync = app->sync_description();
  }
  DsmSystem system(options);
  app->Setup(system);
  RunResult result = system.Run([&app](NodeContext& ctx) { app->Run(ctx); });
  if (verified != nullptr) {
    *verified = app->Verify();
  }
  return result;
}

}  // namespace

double WorkloadResult::OverheadFraction(Bucket bucket) const {
  double bucket_sum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    bucket_sum += detect.overhead_ns[b];
  }
  if (bucket_sum <= 0 || base.sim_time_ns <= 0) {
    return 0;
  }
  const double share = detect.overhead_ns[static_cast<int>(bucket)] / bucket_sum;
  return share * TotalOverheadFraction();
}

double WorkloadResult::IntervalsUsed() const {
  if (detect.detector.intervals_total == 0) {
    return 0;
  }
  return static_cast<double>(detect.detector.intervals_in_overlap) /
         static_cast<double>(detect.detector.intervals_total);
}

double WorkloadResult::BitmapsUsed() const {
  if (detect.bitmap_pairs_recorded == 0) {
    return 0;
  }
  return static_cast<double>(detect.detector.checklist_entries) /
         static_cast<double>(detect.bitmap_pairs_recorded);
}

double WorkloadResult::MsgOverhead() const {
  // Table 3 "Msg Ohead": the marginal bandwidth of read notices relative to
  // everything else the DSM moves (page data included).
  const uint64_t other = detect.net.bytes - detect.net.read_notice_bytes;
  if (other == 0) {
    return 0;
  }
  return static_cast<double>(detect.net.read_notice_bytes) / static_cast<double>(other);
}

double WorkloadResult::MsgOverheadSyncOnly() const {
  // Alternative denominator: only the synchronization messages read notices
  // actually ride on (§5.3 discusses notices inflating sync messages toward
  // system maximums).
  uint64_t sync_bytes = 0;
  for (const char* kind : {"LockRequest", "LockGrant", "BarrierArrive", "BarrierRelease"}) {
    auto it = detect.net.bytes_by_kind.find(kind);
    if (it != detect.net.bytes_by_kind.end()) {
      sync_bytes += it->second;
    }
  }
  if (sync_bytes <= detect.net.read_notice_bytes) {
    return 0;
  }
  return static_cast<double>(detect.net.read_notice_bytes) /
         static_cast<double>(sync_bytes - detect.net.read_notice_bytes);
}

double WorkloadResult::SharedPerSecond() const {
  if (detect.sim_time_ns <= 0) {
    return 0;
  }
  return static_cast<double>(detect.access.shared_accesses) / (detect.sim_time_ns * 1e-9);
}

double WorkloadResult::PrivatePerSecond() const {
  if (detect.sim_time_ns <= 0) {
    return 0;
  }
  return static_cast<double>(detect.access.private_accesses) / (detect.sim_time_ns * 1e-9);
}

WorkloadResult RunWorkload(const AppFactory& factory, DsmOptions options) {
  WorkloadResult result;
  options.race_detection = true;
  result.detect = RunOnce(factory, options, &result.app_name, &result.input, &result.sync,
                          &result.verified);
  options.race_detection = false;
  result.base = RunOnce(factory, options, nullptr, nullptr, nullptr, nullptr);
  return result;
}

WorkloadResult RunWorkloadMedian(const AppFactory& factory, const DsmOptions& options,
                                 int repeats) {
  CVM_CHECK_GT(repeats, 0);
  std::vector<WorkloadResult> runs;
  runs.reserve(repeats);
  for (int i = 0; i < repeats; ++i) {
    runs.push_back(RunWorkload(factory, options));
  }
  std::sort(runs.begin(), runs.end(), [](const WorkloadResult& a, const WorkloadResult& b) {
    return a.Slowdown() < b.Slowdown();
  });
  return runs[runs.size() / 2];
}

WorkloadResult RunWorkloadDetectOnly(const AppFactory& factory, DsmOptions options) {
  WorkloadResult result;
  options.race_detection = true;
  result.detect = RunOnce(factory, options, &result.app_name, &result.input, &result.sync,
                          &result.verified);
  result.base = result.detect;
  return result;
}

}  // namespace cvm
