// Catalog of the bundled evaluation applications, keyed by the lower-case
// names the command-line tools use (fft, sor, tsp, water, lu). One place
// turns an (app, size, seed) request into a fresh ParallelApp instance so
// cvm_run, the DSM service (src/svc/), and the benches agree on what
// "--app=fft --size=64" means.
#ifndef CVM_APPS_APP_CATALOG_H_
#define CVM_APPS_APP_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.h"

namespace cvm {

struct CatalogRequest {
  std::string app;            // fft | sor | tsp | water | lu.
  int64_t size = -1;          // App scale knob; <= 0 keeps the historical default.
  uint64_t seed = 0;          // Workload input seed; 0 keeps the app default.
  uint64_t page_size = 4096;  // Apps pad shared arrays to this.
  bool fix_water_bug = false; // Water only: repaired virial update.
};

// True iff `name` is a catalog app.
bool KnownCatalogApp(const std::string& name);

// The catalog names, in canonical order.
const std::vector<std::string>& CatalogAppNames();

// Builds a fresh instance for the request; nullptr for an unknown app name.
// seed == 0 keeps each app's historical default input, so requests without
// an explicit seed behave like older versions of the tools.
std::unique_ptr<ParallelApp> MakeCatalogApp(const CatalogRequest& request);

}  // namespace cvm

#endif  // CVM_APPS_APP_CATALOG_H_
