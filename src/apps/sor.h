// SOR: Jacobi relaxation over a 2-D grid, the paper's barrier-only,
// no-sharing application. Each node owns a contiguous block of rows; every
// iteration reads the neighbouring blocks' boundary rows written in the
// previous epoch (always barrier-ordered) and writes its own block. Rows are
// page-padded, so writers never share pages: the detector should find no
// unsynchronized sharing at all (Table 3: 0% intervals used).
#ifndef CVM_APPS_SOR_H_
#define CVM_APPS_SOR_H_

#include <string>

#include "src/apps/app.h"

namespace cvm {

class SorApp : public ParallelApp {
 public:
  struct Params {
    int rows = 66;      // Including the two fixed boundary rows.
    int cols = 64;
    int iters = 4;
    uint64_t page_size = 4096;  // For row padding; match DsmOptions.
  };

  explicit SorApp(Params params) : params_(params) {}

  std::string name() const override { return "SOR"; }
  std::string input_description() const override {
    return std::to_string(params_.rows) + "x" + std::to_string(params_.cols);
  }
  std::string sync_description() const override { return "barrier"; }
  InstructionMix instruction_mix() const override;

  void Setup(DsmSystem& system) override;
  void Run(NodeContext& ctx) override;
  bool Verify() const override { return verified_ok_; }

 private:
  size_t Index(int row, int col) const { return static_cast<size_t>(row) * stride_ + col; }
  // Grid value serving as the fixed boundary condition / initial state.
  static float InitialValue(int row, int col);

  Params params_;
  size_t stride_ = 0;  // Words per padded row.
  SharedArray<float> grid_[2];
  bool verified_ok_ = false;
};

}  // namespace cvm

#endif  // CVM_APPS_SOR_H_
