// Water: a compact molecular-dynamics kernel standing in for Splash2's
// Water-Nsquared (216 molecules, 5 iterations; locks + barriers; pairwise
// forces with cutoff). Remote force contributions are accumulated into the
// shared force arrays under per-block locks; the global potential-energy
// accumulator is lock-protected — but the global *virial* accumulator is
// updated WITHOUT its lock, modelling the genuine write-write race the
// paper found in the Splash2 original (reported and fixed upstream).
#ifndef CVM_APPS_WATER_H_
#define CVM_APPS_WATER_H_

#include <string>
#include <vector>

#include "src/apps/app.h"

namespace cvm {

class WaterApp : public ParallelApp {
 public:
  struct Params {
    int molecules = 216;
    int iters = 5;
    bool fix_virial_bug = false;  // True = the repaired Splash2 behaviour.
    uint64_t seed = 7;
    uint64_t page_size = 4096;  // Force chunks are page-aligned.
  };

  explicit WaterApp(Params params) : params_(params) {}

  std::string name() const override { return "Water"; }
  std::string input_description() const override {
    return std::to_string(params_.molecules) + " mols, " + std::to_string(params_.iters) +
           " iters";
  }
  std::string sync_description() const override { return "lock, barrier"; }
  InstructionMix instruction_mix() const override;

  void Setup(DsmSystem& system) override;
  void Run(NodeContext& ctx) override;
  bool Verify() const override { return verified_ok_; }

  GlobalAddr virial_addr() const { return virial_.addr(); }

  struct Vec3 {
    float x = 0;
    float y = 0;
    float z = 0;
  };

  // Site-site force and potential for displacement d (truncated LJ-like).
  static void PairForce(const Vec3& d, Vec3* force, float* potential);
  // Molecule-molecule interaction: sum over the 3x3 site pairs, with site
  // offsets given as 9 floats (3 sites x 3 coordinates).
  static void MoleculeForce(const Vec3& d, const float* site_offsets, Vec3* force,
                            float* potential);
  // The water molecule's intra-molecular site geometry.
  static const float kSiteOffsets[9];
  static constexpr float kCutoff = 2.5f;

 private:
  static constexpr LockId kEnergyLock = 2;
  static constexpr LockId kVirialLock = 3;
  static constexpr LockId kForceLockBase = 8;     // + molecule chunk index.
  static constexpr int kMoleculesPerLock = 8;     // Fine-grained force locks.
  static constexpr float kDt = 0.002f;

  // Initial lattice placement for molecule m.
  Vec3 InitialPos(int m) const;
  Vec3 InitialVel(int m) const;

  // Index of molecule m's axis-a force slot: one page per lock chunk, so a
  // chunk's page travels with its lock and different chunks never falsely
  // share (the layout the original gets from per-molecule structures).
  size_t ForceIndex(int m, int a) const {
    const size_t words_per_page = params_.page_size / kWordSize;
    return static_cast<size_t>(m / kMoleculesPerLock) * words_per_page +
           static_cast<size_t>(m % kMoleculesPerLock) * 3 + static_cast<size_t>(a);
  }

  Params params_;
  SharedArray<float> pos_[3];
  SharedArray<float> vel_[3];
  SharedArray<float> force_;    // Interleaved m*3+axis (locality: one page
                                // moves with a chunk's lock, not three).
  SharedVar<float> potential_;  // Guarded by kEnergyLock.
  SharedVar<float> virial_;     // BUG: updated without kVirialLock.
  bool verified_ok_ = false;
};

}  // namespace cvm

#endif  // CVM_APPS_WATER_H_
