#include "src/apps/tsp.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace cvm {
namespace {

// Expands all tour prefixes of the given depth starting at city 0.
void EnumeratePrefixes(int num_cities, int depth, std::vector<int32_t>& prefix,
                       std::vector<std::vector<int32_t>>& out) {
  if (static_cast<int>(prefix.size()) == depth) {
    out.push_back(prefix);
    return;
  }
  for (int32_t city = 1; city < num_cities; ++city) {
    if (std::find(prefix.begin(), prefix.end(), city) != prefix.end()) {
      continue;
    }
    prefix.push_back(city);
    EnumeratePrefixes(num_cities, depth, prefix, out);
    prefix.pop_back();
  }
}

// Serial depth-first branch and bound continuing from `path`.
void SerialSearch(const std::vector<int32_t>& dist, int n, std::vector<int32_t>& path,
                  uint32_t visited, int32_t length, int32_t* best) {
  if (static_cast<int>(path.size()) == n) {
    const int32_t total = length + dist[path.back() * n + 0];
    *best = std::min(*best, total);
    return;
  }
  const int32_t last = path.back();
  for (int32_t city = 1; city < n; ++city) {
    if (visited & (1u << city)) {
      continue;
    }
    const int32_t extended = length + dist[last * n + city];
    if (extended >= *best) {
      continue;
    }
    path.push_back(city);
    SerialSearch(dist, n, path, visited | (1u << city), extended, best);
    path.pop_back();
  }
}

// Deterministic greedy nearest-neighbour tour: the standard initial bound.
// Starting from a strong bound also shrinks the schedule-dependence of the
// search (stale-bound pruning differences matter less), which is why real
// branch-and-bound codes seed it.
int32_t GreedyTour(const std::vector<int32_t>& dist, int n, std::vector<int32_t>* tour) {
  std::vector<bool> used(n, false);
  tour->assign(1, 0);
  used[0] = true;
  int32_t length = 0;
  for (int step = 1; step < n; ++step) {
    const int32_t last = tour->back();
    int32_t best_city = -1;
    int32_t best_d = 0;
    for (int32_t c = 1; c < n; ++c) {
      if (!used[c] && (best_city < 0 || dist[last * n + c] < best_d)) {
        best_city = c;
        best_d = dist[last * n + c];
      }
    }
    tour->push_back(best_city);
    used[best_city] = true;
    length += best_d;
  }
  return length + dist[tour->back() * n + 0];
}

}  // namespace

InstructionMix TspApp::instruction_mix() const {
  // Calibrated to Table 2's TSP row: 244 stack, 1213 static, 48717 library,
  // 3910 CVM, 350 instrumented candidates.
  InstructionMix mix;
  mix.stack = 244;
  mix.static_data = 1213;
  mix.library = 48717;
  mix.cvm = 3910;
  mix.candidate = 350;
  mix.candidate_private_block = 0.0;
  mix.candidate_private_interproc = 0.68;
  return mix;
}

std::vector<int32_t> TspApp::MakeDistances() const {
  Rng rng(params_.seed);
  const int n = params_.num_cities;
  std::vector<int32_t> dist(static_cast<size_t>(n) * n, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const int32_t d = static_cast<int32_t>(rng.Range(10, 99));
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }
  return dist;
}

int32_t TspApp::SolveSerial() const {
  const std::vector<int32_t> dist = MakeDistances();
  std::vector<int32_t> path = {0};
  int32_t best = kInfinity;
  SerialSearch(dist, params_.num_cities, path, 1u, 0, &best);
  return best;
}

void TspApp::Setup(DsmSystem& system) {
  const int n = params_.num_cities;
  CVM_CHECK_LE(n, 20);
  CVM_CHECK_GE(n, params_.prefix_depth + 2);

  std::vector<std::vector<int32_t>> prefixes;
  std::vector<int32_t> prefix = {0};
  EnumeratePrefixes(n, params_.prefix_depth, prefix, prefixes);
  num_tasks_ = static_cast<int>(prefixes.size());

  // Distance rows are page-padded: DFS intervals read several benign pages,
  // so most recorded bitmaps never join a check list (Table 3's low
  // "Bitmaps Used" despite TSP's high "Intervals Used").
  dist_stride_ = params_.page_size / kWordSize;
  dist_ = SharedArray<int32_t>::Alloc(system, "tsp_dist", static_cast<size_t>(n) * dist_stride_);
  queue_ = SharedArray<int32_t>::Alloc(
      system, "tsp_queue", static_cast<size_t>(num_tasks_) * params_.prefix_depth);
  queue_head_ = SharedVar<int32_t>::Alloc(system, "tsp_queue_head");
  min_tour_ = SharedVar<int32_t>::Alloc(system, "tsp_min_tour");
  best_tour_ = SharedArray<int32_t>::Alloc(system, "tsp_best_tour", n);
}

namespace {

// Parallel worker's DFS. Reads the global bound WITHOUT the lock (the
// intentional race); takes the bound lock only to improve it.
struct ParallelSearch {
  NodeContext& ctx;
  const TspApp::Params& params;
  LocalArray<int32_t>& local_dist;
  LocalArray<int32_t>& path;
  const SharedVar<int32_t>& min_tour;
  const SharedArray<int32_t>& best_tour;
  const SharedArray<int32_t>& dist_shared;
  size_t dist_stride;
  LockId bound_lock;
  int n;

  void Dfs(int depth, uint32_t visited, int32_t length) {
    ctx.Compute(85);
    // Touch the (page-padded, read-only) distance row of the current city:
    // the shared read the original performs when it walks the matrix.
    (void)dist_shared.Get(ctx, static_cast<size_t>(path.Get(depth - 1)) * dist_stride);
    if (depth == n) {
      const int32_t total = length + local_dist.Get(path.Get(n - 1) * n + 0);
      ctx.SetSite("tsp.cc:bound_check_unlocked");
      const int32_t bound = min_tour.Get(ctx);  // RACE: unsynchronized read.
      ctx.SetSite("tsp.cc:search");
      if (total < bound) {
        ctx.Lock(bound_lock);
        ctx.SetSite("tsp.cc:bound_update_locked");
        if (total < min_tour.Get(ctx)) {
          min_tour.Set(ctx, total);
          for (int d = 0; d < n; ++d) {
            best_tour.Set(ctx, d, path.Get(d));
          }
        }
        ctx.SetSite("tsp.cc:search");
        ctx.Unlock(bound_lock);
      }
      return;
    }
    const int32_t last = path.Get(depth - 1);
    for (int32_t city = 1; city < n; ++city) {
      if (visited & (1u << city)) {
        continue;
      }
      const int32_t extended = length + local_dist.Get(last * n + city);
      ctx.SetSite("tsp.cc:prune_check_unlocked");
      const int32_t bound = min_tour.Get(ctx);  // RACE: unsynchronized read.
      ctx.SetSite("tsp.cc:search");
      if (extended >= bound) {
        continue;  // Pruned, possibly against a stale bound — benign.
      }
      path.Set(depth, city);
      Dfs(depth + 1, visited | (1u << city), extended);
    }
  }
};

}  // namespace

void TspApp::Run(NodeContext& ctx) {
  const int n = params_.num_cities;

  if (ctx.id() == 0) {
    const std::vector<int32_t> dist = MakeDistances();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        dist_.Set(ctx, static_cast<size_t>(i) * dist_stride_ + j, dist[i * n + j]);
      }
    }
    std::vector<std::vector<int32_t>> prefixes;
    std::vector<int32_t> prefix = {0};
    EnumeratePrefixes(n, params_.prefix_depth, prefix, prefixes);
    for (size_t t = 0; t < prefixes.size(); ++t) {
      for (int d = 0; d < params_.prefix_depth; ++d) {
        queue_.Set(ctx, t * params_.prefix_depth + d, prefixes[t][d]);
      }
    }
    queue_head_.Set(ctx, 0);
    std::vector<int32_t> greedy;
    const int32_t greedy_len = GreedyTour(dist, n, &greedy);
    min_tour_.Set(ctx, greedy_len);
    for (int d = 0; d < n; ++d) {
      best_tour_.Set(ctx, d, greedy[d]);
    }
  }
  ctx.Barrier();

  // Private copy of the distance matrix: pointer-chased reads ATOM cannot
  // prove private, so they stay instrumented — the source of TSP's high
  // private access rate (Table 3).
  LocalArray<int32_t> local_dist(ctx, static_cast<size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      local_dist.Set(i * n + j, dist_.Get(ctx, static_cast<size_t>(i) * dist_stride_ + j));
    }
  }
  LocalArray<int32_t> path(ctx, n);
  ctx.SetSite("tsp.cc:search");

  ParallelSearch search{ctx,        params_,    local_dist, path, min_tour_,
                        best_tour_, dist_,      dist_stride_, kBoundLock, n};

  while (true) {
    ctx.Lock(kQueueLock);
    const int32_t task = queue_head_.Get(ctx);
    if (task < num_tasks_) {
      queue_head_.Set(ctx, task + 1);
    }
    ctx.Unlock(kQueueLock);
    if (task >= num_tasks_) {
      break;
    }

    uint32_t visited = 1u;
    int32_t length = 0;
    path.Set(0, 0);
    for (int d = 1; d < params_.prefix_depth; ++d) {
      const int32_t city = queue_.Get(ctx, static_cast<size_t>(task) * params_.prefix_depth + d);
      path.Set(d, city);
      visited |= 1u << city;
      length += local_dist.Get(path.Get(d - 1) * n + city);
    }
    search.Dfs(params_.prefix_depth, visited, length);
  }

  ctx.Barrier();
  if (ctx.id() == 0) {
    verified_ok_ = (min_tour_.Get(ctx) == SolveSerial());
  }
}

}  // namespace cvm
