#include "src/apps/water.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace cvm {

InstructionMix WaterApp::instruction_mix() const {
  // Calibrated to Table 2's Water row: 649 stack, 1919 static, 124716
  // library, 3910 CVM, 528 instrumented candidates.
  InstructionMix mix;
  mix.stack = 649;
  mix.static_data = 1919;
  mix.library = 124716;
  mix.cvm = 3910;
  mix.candidate = 528;
  mix.candidate_private_block = 0.0;
  mix.candidate_private_interproc = 0.62;
  return mix;
}

WaterApp::Vec3 WaterApp::InitialPos(int m) const {
  const int side = static_cast<int>(std::ceil(std::cbrt(static_cast<double>(params_.molecules))));
  Vec3 p;
  p.x = static_cast<float>(m % side) * 1.2f;
  p.y = static_cast<float>((m / side) % side) * 1.2f;
  p.z = static_cast<float>(m / (side * side)) * 1.2f;
  return p;
}

WaterApp::Vec3 WaterApp::InitialVel(int m) const {
  Rng rng(params_.seed + static_cast<uint64_t>(m) * 1315423911ull);
  Vec3 v;
  v.x = static_cast<float>(rng.NextDouble() - 0.5) * 0.1f;
  v.y = static_cast<float>(rng.NextDouble() - 0.5) * 0.1f;
  v.z = static_cast<float>(rng.NextDouble() - 0.5) * 0.1f;
  return v;
}

const float WaterApp::kSiteOffsets[9] = {0.0f,   0.0f,  0.0f,  0.10f, 0.05f,
                                         -0.03f, -0.08f, 0.06f, 0.04f};

void WaterApp::MoleculeForce(const Vec3& d, const float* site_offsets, Vec3* force,
                             float* potential) {
  force->x = force->y = force->z = 0;
  *potential = 0;
  for (int s1 = 0; s1 < 3; ++s1) {
    for (int s2 = 0; s2 < 3; ++s2) {
      const Vec3 dd{d.x + site_offsets[s1 * 3 + 0] - site_offsets[s2 * 3 + 0],
                    d.y + site_offsets[s1 * 3 + 1] - site_offsets[s2 * 3 + 1],
                    d.z + site_offsets[s1 * 3 + 2] - site_offsets[s2 * 3 + 2]};
      Vec3 f;
      float pot;
      PairForce(dd, &f, &pot);
      force->x += f.x;
      force->y += f.y;
      force->z += f.z;
      *potential += pot;
    }
  }
}

void WaterApp::PairForce(const Vec3& d, Vec3* force, float* potential) {
  const float r2 = d.x * d.x + d.y * d.y + d.z * d.z;
  if (r2 >= kCutoff * kCutoff || r2 < 1e-6f) {
    force->x = force->y = force->z = 0;
    *potential = 0;
    return;
  }
  // Truncated, softened inverse-power interaction (LJ-like shape).
  const float inv2 = 1.0f / (r2 + 0.5f);
  const float inv6 = inv2 * inv2 * inv2;
  const float magnitude = 24.0f * inv6 * inv2 * (2.0f * inv6 - 1.0f);
  force->x = magnitude * d.x;
  force->y = magnitude * d.y;
  force->z = magnitude * d.z;
  *potential = 4.0f * inv6 * (inv6 - 1.0f);
}

void WaterApp::Setup(DsmSystem& system) {
  const size_t n = static_cast<size_t>(params_.molecules);
  const char* axes[3] = {"x", "y", "z"};
  for (int a = 0; a < 3; ++a) {
    pos_[a] = SharedArray<float>::Alloc(system, std::string("water_pos_") + axes[a], n);
    vel_[a] = SharedArray<float>::Alloc(system, std::string("water_vel_") + axes[a], n);
  }
  const size_t chunks =
      (n + kMoleculesPerLock - 1) / kMoleculesPerLock;
  force_ = SharedArray<float>::Alloc(system, "water_force",
                                     chunks * (params_.page_size / kWordSize));
  potential_ = SharedVar<float>::Alloc(system, "water_potential");
  virial_ = SharedVar<float>::Alloc(system, "water_virial");
}

void WaterApp::Run(NodeContext& ctx) {
  const int n = params_.molecules;
  const int p = ctx.num_nodes();
  const int per_node = (n + p - 1) / p;
  const int first = ctx.id() * per_node;
  const int last = std::min(n - 1, first + per_node - 1);

  // Parallel initialization: each node places its own molecule block.
  for (int m = first; m <= last; ++m) {
    const Vec3 ipos = InitialPos(m);
    const Vec3 ivel = InitialVel(m);
    pos_[0].Set(ctx, m, ipos.x);
    pos_[1].Set(ctx, m, ipos.y);
    pos_[2].Set(ctx, m, ipos.z);
    vel_[0].Set(ctx, m, ivel.x);
    vel_[1].Set(ctx, m, ivel.y);
    vel_[2].Set(ctx, m, ivel.z);
  }
  if (ctx.id() == 0) {
    potential_.Set(ctx, 0.0f);
    virial_.Set(ctx, 0.0f);
  }
  ctx.Barrier();

  for (int iter = 0; iter < params_.iters; ++iter) {
    // Phase A: zero own force block (barrier-separated from accumulation).
    for (int m = first; m <= last; ++m) {
      for (int a = 0; a < 3; ++a) {
        force_.Set(ctx, ForceIndex(m, a), 0.0f);
      }
    }
    ctx.Barrier();

    // Phase B: pairwise forces. Each node handles pairs (i, j), i in its own
    // block, j > i; contributions are buffered per molecule chunk and
    // flushed under that chunk's lock — the fine-grained synchronization
    // that gives Water its high interval count (Table 1: 46 per barrier).
    const int chunks = (n + kMoleculesPerLock - 1) / kMoleculesPerLock;
    const auto chunk_of = [](int m) { return m / kMoleculesPerLock; };
    // Instrumented private accumulation buffers: pointer-chased stores ATOM
    // keeps instrumented (the bulk of Water's private access rate, Table 3).
    LocalArray<float> buffer(ctx, static_cast<size_t>(chunks) * kMoleculesPerLock * 3, 0.0f);
    const auto slot = [](int chunk, int m, int a) {
      return static_cast<size_t>(chunk) * kMoleculesPerLock * 3 +
             static_cast<size_t>(m % kMoleculesPerLock) * 3 + static_cast<size_t>(a);
    };
    for (size_t s = 0; s < buffer.size(); ++s) {
      buffer.Set(s, 0.0f);
    }
    // Intra-molecular site geometry, held in an instrumented private table
    // (re-read per interaction, as the original walks its molecule structs).
    LocalArray<float> sites(ctx, 9);
    for (int s = 0; s < 9; ++s) {
      sites.Set(s, kSiteOffsets[s]);
    }
    float my_potential = 0.0f;
    float my_virial = 0.0f;
    float site_buf[9];
    for (int i = first; i <= last; ++i) {
      const Vec3 pi{pos_[0].Get(ctx, i), pos_[1].Get(ctx, i), pos_[2].Get(ctx, i)};
      for (int j = i + 1; j < n; ++j) {
        const Vec3 pj{pos_[0].Get(ctx, j), pos_[1].Get(ctx, j), pos_[2].Get(ctx, j)};
        const Vec3 d{pi.x - pj.x, pi.y - pj.y, pi.z - pj.z};
        // Walk the 3x3 site-pair structure through the instrumented private
        // table, as the original walks its molecule structs.
        for (int s1 = 0; s1 < 3; ++s1) {
          for (int s2 = 0; s2 < 3; ++s2) {
            for (int a = 0; a < 3; ++a) {
              site_buf[s1 * 3 + a] = sites.Get(s1 * 3 + a);
            }
            (void)sites.Get(s2 * 3);
          }
        }
        Vec3 f;
        float pot;
        MoleculeForce(d, site_buf, &f, &pot);
        ctx.Compute(9 * 18);
        my_potential += pot;
        my_virial += f.x * d.x + f.y * d.y + f.z * d.z;
        const int ci = chunk_of(i);
        buffer.Set(slot(ci, i, 0), buffer.Get(slot(ci, i, 0)) + f.x);
        buffer.Set(slot(ci, i, 1), buffer.Get(slot(ci, i, 1)) + f.y);
        buffer.Set(slot(ci, i, 2), buffer.Get(slot(ci, i, 2)) + f.z);
        const int cj = chunk_of(j);
        buffer.Set(slot(cj, j, 0), buffer.Get(slot(cj, j, 0)) - f.x);
        buffer.Set(slot(cj, j, 1), buffer.Get(slot(cj, j, 1)) - f.y);
        buffer.Set(slot(cj, j, 2), buffer.Get(slot(cj, j, 2)) - f.z);
      }
    }
    for (int chunk = 0; chunk < chunks; ++chunk) {
      const int chunk_first = chunk * kMoleculesPerLock;
      const int chunk_last = std::min(n - 1, chunk_first + kMoleculesPerLock - 1);
      bool any = false;
      for (int m = chunk_first; m <= chunk_last && !any; ++m) {
        for (int a = 0; a < 3; ++a) {
          if (buffer.raw()[slot(chunk, m, a)] != 0.0f) {
            any = true;
            break;
          }
        }
      }
      if (!any) {
        continue;
      }
      ctx.Lock(kForceLockBase + chunk);
      for (int m = chunk_first; m <= chunk_last; ++m) {
        for (int a = 0; a < 3; ++a) {
          const float add = buffer.Get(slot(chunk, m, a));
          if (add != 0.0f) {
            const size_t fi = ForceIndex(m, a);
            force_.Set(ctx, fi, force_.Get(ctx, fi) + add);
          }
        }
      }
      ctx.Unlock(kForceLockBase + chunk);
    }

    // Global accumulators. Potential is correctly locked; the virial update
    // models the Splash2 Water bug: a read-modify-write of a shared global
    // with no lock around it (write-write and read-write races).
    ctx.Lock(kEnergyLock);
    ctx.SetSite("water.cc:potential_locked");
    potential_.Set(ctx, potential_.Get(ctx) + my_potential);
    ctx.Unlock(kEnergyLock);
    if (params_.fix_virial_bug) {
      ctx.Lock(kVirialLock);
      virial_.Set(ctx, virial_.Get(ctx) + my_virial);
      ctx.Unlock(kVirialLock);
    } else {
      ctx.SetSite("water.cc:virial_unlocked_BUG");
      virial_.Set(ctx, virial_.Get(ctx) + my_virial);  // RACE: missing lock.
      ctx.SetSite("water.cc:run");
    }
    ctx.Barrier();

    // Phase C: integrate own block.
    for (int m = first; m <= last; ++m) {
      for (int a = 0; a < 3; ++a) {
        const float f = force_.Get(ctx, ForceIndex(m, a));
        const float v = vel_[a].Get(ctx, m) + f * kDt;
        vel_[a].Set(ctx, m, v);
        pos_[a].Set(ctx, m, pos_[a].Get(ctx, m) + v * kDt);
      }
      ctx.Compute(9);
    }
    ctx.Barrier();
  }

  if (ctx.id() == 0) {
    // Serial reference: same arithmetic, deterministic order. Force sums are
    // order-sensitive in float, so compare with tolerance; the virial is
    // intentionally corrupted by the race and is not verified.
    std::vector<Vec3> spos(n), svel(n), sforce(n);
    for (int m = 0; m < n; ++m) {
      spos[m] = InitialPos(m);
      svel[m] = InitialVel(m);
    }
    for (int iter = 0; iter < params_.iters; ++iter) {
      for (int m = 0; m < n; ++m) {
        sforce[m] = Vec3{};
      }
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          const Vec3 d{spos[i].x - spos[j].x, spos[i].y - spos[j].y, spos[i].z - spos[j].z};
          Vec3 f;
          float pot;
          MoleculeForce(d, kSiteOffsets, &f, &pot);
          sforce[i].x += f.x;
          sforce[i].y += f.y;
          sforce[i].z += f.z;
          sforce[j].x -= f.x;
          sforce[j].y -= f.y;
          sforce[j].z -= f.z;
        }
      }
      for (int m = 0; m < n; ++m) {
        svel[m].x += sforce[m].x * kDt;
        svel[m].y += sforce[m].y * kDt;
        svel[m].z += sforce[m].z * kDt;
        spos[m].x += svel[m].x * kDt;
        spos[m].y += svel[m].y * kDt;
        spos[m].z += svel[m].z * kDt;
      }
    }
    bool ok = true;
    for (int m = 0; m < n && ok; ++m) {
      const float gx = pos_[0].Get(ctx, m);
      const float gy = pos_[1].Get(ctx, m);
      const float gz = pos_[2].Get(ctx, m);
      ok = std::fabs(gx - spos[m].x) < 1e-2f && std::fabs(gy - spos[m].y) < 1e-2f &&
           std::fabs(gz - spos[m].z) < 1e-2f;
    }
    verified_ok_ = ok;
  }
}

}  // namespace cvm
