// Common interface for the four evaluation applications (FFT, SOR, TSP,
// Water). An app describes itself (Table 1/2 metadata), allocates its shared
// data in Setup, runs SPMD in Run, and self-verifies on node 0 before the
// final barrier. One app object serves one DsmSystem run; the harness
// constructs a fresh instance per run via a factory.
#ifndef CVM_APPS_APP_H_
#define CVM_APPS_APP_H_

#include <functional>
#include <memory>
#include <string>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"
#include "src/instr/binary_image.h"

namespace cvm {

class ParallelApp {
 public:
  virtual ~ParallelApp() = default;

  virtual std::string name() const = 0;
  // Table 1 "Input Set" and "Synchronization" strings.
  virtual std::string input_description() const = 0;
  virtual std::string sync_description() const = 0;

  // Instruction-mix model of the app's binary (Table 2), calibrated to the
  // paper's reported per-binary counts; see DESIGN.md §1 for the ATOM
  // substitution rationale.
  virtual InstructionMix instruction_mix() const = 0;

  // Allocates shared data; called once before Run, single-threaded.
  virtual void Setup(DsmSystem& system) = 0;

  // SPMD body, executed concurrently by every node.
  virtual void Run(NodeContext& ctx) = 0;

  // Called after the run completes; returns true if the computed result
  // matches the serial reference (stored by node 0 during Run).
  virtual bool Verify() const = 0;
};

using AppFactory = std::function<std::unique_ptr<ParallelApp>()>;

}  // namespace cvm

#endif  // CVM_APPS_APP_H_
