// FFT: a 2-D complex FFT over an R x C matrix, decomposed the way the
// Splash2-style FFT kernels are — a row phase (each node transforms its own
// row block), a barrier, and a column phase (each node transforms its own
// column block, reading every other node's phase-1 output). Rows are packed,
// not page-padded, so the column phase's strided writes put several writers
// on the same pages: barrier-concurrent intervals with overlapping page sets
// that turn out to be false sharing — the behaviour behind FFT's Table 3 row
// (15% intervals used, only 1% of bitmaps fetched, no races).
#ifndef CVM_APPS_FFT_H_
#define CVM_APPS_FFT_H_

#include <complex>
#include <string>
#include <vector>

#include "src/apps/app.h"

namespace cvm {

// In-place radix-2 FFT shared by the parallel app and the serial reference.
void Radix2Fft(std::vector<std::complex<float>>& data);

// The same transform over instrumented private buffers: the butterfly
// loads/stores are pointer-based accesses ATOM cannot statically prove
// private, so they go through the analysis routine at run time — the bulk
// of FFT's instrumented-private access rate (Table 3).
void Radix2FftLocal(LocalArray<float>& re, LocalArray<float>& im);

class FftApp : public ParallelApp {
 public:
  struct Params {
    int rows = 64;  // Power of two.
    int cols = 64;  // Power of two.
  };

  explicit FftApp(Params params) : params_(params) {}

  std::string name() const override { return "FFT"; }
  std::string input_description() const override {
    return std::to_string(params_.rows) + "x" + std::to_string(params_.cols);
  }
  std::string sync_description() const override { return "barrier"; }
  InstructionMix instruction_mix() const override;

  void Setup(DsmSystem& system) override;
  void Run(NodeContext& ctx) override;
  bool Verify() const override { return verified_ok_; }

 private:
  size_t Index(int row, int col) const {
    return static_cast<size_t>(row) * params_.cols + col;
  }
  // Index into the transposed (cols x rows) scratch matrix.
  size_t TIndex(int trow, int tcol) const {
    return static_cast<size_t>(trow) * params_.rows + tcol;
  }
  static float InitialRe(int row, int col);
  static float InitialIm(int row, int col);

  Params params_;
  SharedArray<float> re_;
  SharedArray<float> im_;
  SharedArray<float> tre_;  // Transposed scratch.
  SharedArray<float> tim_;
  bool verified_ok_ = false;
};

}  // namespace cvm

#endif  // CVM_APPS_FFT_H_
