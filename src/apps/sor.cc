#include "src/apps/sor.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/check.h"

namespace cvm {

InstructionMix SorApp::instruction_mix() const {
  // Calibrated to Table 2's SOR row: 342 stack, 1304 static, 48717 library,
  // 3910 CVM, 126 instrumented candidates.
  InstructionMix mix;
  mix.stack = 342;
  mix.static_data = 1304;
  mix.library = 48717;
  mix.cvm = 3910;
  mix.candidate = 126;
  mix.candidate_private_block = 0.0;
  mix.candidate_private_interproc = 0.55;
  return mix;
}

float SorApp::InitialValue(int row, int col) {
  return static_cast<float>((row * 31 + col * 17) % 97) / 97.0f;
}

void SorApp::Setup(DsmSystem& system) {
  CVM_CHECK_GE(params_.rows, 3);
  CVM_CHECK_GE(params_.cols, 3);
  stride_ = (static_cast<size_t>(params_.cols) * kWordSize + params_.page_size - 1) /
            params_.page_size * (params_.page_size / kWordSize);
  const size_t words = static_cast<size_t>(params_.rows) * stride_;
  grid_[0] = SharedArray<float>::Alloc(system, "sor_grid0", words);
  grid_[1] = SharedArray<float>::Alloc(system, "sor_grid1", words);
}

void SorApp::Run(NodeContext& ctx) {
  const int p = ctx.num_nodes();
  const int interior = params_.rows - 2;
  const int per_node = (interior + p - 1) / p;
  const int first = 1 + ctx.id() * per_node;
  const int last = std::min(params_.rows - 2, first + per_node - 1);

  // Parallel initialization: each node fills its own row block, the usual
  // Splash2-style locality optimization. The fixed boundary rows belong to
  // exactly one owner each: row 0 to node 0, the bottom row to whichever
  // node owns the final interior row (idle nodes initialize nothing).
  if (first <= last) {
    const int init_first = (ctx.id() == 0) ? 0 : first;
    const int init_last = (last == params_.rows - 2) ? params_.rows - 1 : last;
    for (int r = init_first; r <= init_last; ++r) {
      for (int c = 0; c < params_.cols; ++c) {
        grid_[0].Set(ctx, Index(r, c), InitialValue(r, c));
        grid_[1].Set(ctx, Index(r, c), InitialValue(r, c));
      }
    }
  }
  ctx.Barrier();

  int src = 0;
  // Instrumented private scratch row (the pointer-based staging buffer the
  // original keeps — SOR's modest private access rate in Table 3).
  LocalArray<float> scratch(ctx, static_cast<size_t>(params_.cols));
  for (int iter = 0; iter < params_.iters; ++iter) {
    const int dst = 1 - src;
    for (int r = first; r <= last; ++r) {
      for (int c = 1; c < params_.cols - 1; ++c) {
        const float up = grid_[src].Get(ctx, Index(r - 1, c));
        const float down = grid_[src].Get(ctx, Index(r + 1, c));
        const float left = grid_[src].Get(ctx, Index(r, c - 1));
        const float right = grid_[src].Get(ctx, Index(r, c + 1));
        scratch.Set(c, 0.25f * (up + down + left + right));
        ctx.Compute(16);
      }
      for (int c = 1; c < params_.cols - 1; ++c) {
        grid_[dst].Set(ctx, Index(r, c), scratch.Get(c));
      }
    }
    ctx.Barrier();
    src = dst;
  }

  // Node 0 verifies the full grid against a serial recomputation.
  if (ctx.id() == 0) {
    std::vector<std::vector<float>> a(params_.rows, std::vector<float>(params_.cols));
    std::vector<std::vector<float>> b = a;
    for (int r = 0; r < params_.rows; ++r) {
      for (int c = 0; c < params_.cols; ++c) {
        a[r][c] = InitialValue(r, c);
        b[r][c] = InitialValue(r, c);
      }
    }
    auto* cur = &a;
    auto* nxt = &b;
    for (int iter = 0; iter < params_.iters; ++iter) {
      for (int r = 1; r < params_.rows - 1; ++r) {
        for (int c = 1; c < params_.cols - 1; ++c) {
          (*nxt)[r][c] =
              0.25f * ((*cur)[r - 1][c] + (*cur)[r + 1][c] + (*cur)[r][c - 1] + (*cur)[r][c + 1]);
        }
      }
      std::swap(cur, nxt);
    }
    bool ok = true;
    for (int r = 1; r < params_.rows - 1 && ok; ++r) {
      for (int c = 1; c < params_.cols - 1 && ok; ++c) {
        const float got = grid_[src].Get(ctx, Index(r, c));
        ok = std::fabs(got - (*cur)[r][c]) < 1e-5f;
      }
    }
    verified_ok_ = ok;
  }
}

}  // namespace cvm
