#include "src/apps/app_catalog.h"

#include "src/apps/fft.h"
#include "src/apps/lu.h"
#include "src/apps/sor.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"

namespace cvm {

const std::vector<std::string>& CatalogAppNames() {
  static const std::vector<std::string> kNames = {"fft", "sor", "tsp", "water", "lu"};
  return kNames;
}

bool KnownCatalogApp(const std::string& name) {
  for (const std::string& known : CatalogAppNames()) {
    if (known == name) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<ParallelApp> MakeCatalogApp(const CatalogRequest& request) {
  const int64_t size = request.size;
  if (request.app == "fft") {
    FftApp::Params params;
    params.rows = size > 0 ? static_cast<int>(size) : 64;
    params.cols = params.rows;
    return std::make_unique<FftApp>(params);
  }
  if (request.app == "sor") {
    SorApp::Params params;
    params.rows = size > 0 ? static_cast<int>(size) + 2 : 130;
    params.cols = size > 0 ? static_cast<int>(size) : 128;
    params.iters = 4;
    params.page_size = request.page_size;
    return std::make_unique<SorApp>(params);
  }
  if (request.app == "tsp") {
    TspApp::Params params;
    params.num_cities = size > 0 ? static_cast<int>(size) : 12;
    params.page_size = request.page_size;
    if (request.seed != 0) {
      params.seed = request.seed;
    }
    return std::make_unique<TspApp>(params);
  }
  if (request.app == "water") {
    WaterApp::Params params;
    params.molecules = size > 0 ? static_cast<int>(size) : 125;
    params.iters = 3;
    params.fix_virial_bug = request.fix_water_bug;
    params.page_size = request.page_size;
    if (request.seed != 0) {
      params.seed = request.seed;
    }
    return std::make_unique<WaterApp>(params);
  }
  if (request.app == "lu") {
    LuApp::Params params;
    params.n = size > 0 ? static_cast<int>(size) : 64;
    params.block = 8;
    if (request.seed != 0) {
      params.seed = request.seed;
    }
    return std::make_unique<LuApp>(params);
  }
  return nullptr;
}

}  // namespace cvm
