// LU: Splash2-style blocked LU factorization (no pivoting, diagonally
// dominant input), a fifth workload beyond the paper's four. Blocks are
// distributed 2-D round-robin; each outer step factorizes the diagonal
// block, updates the perimeter, then the interior, with barriers between
// phases. Correct code: the detector must stay silent.
#ifndef CVM_APPS_LU_H_
#define CVM_APPS_LU_H_

#include <string>
#include <vector>

#include "src/apps/app.h"

namespace cvm {

class LuApp : public ParallelApp {
 public:
  struct Params {
    int n = 64;          // Matrix dimension.
    int block = 8;       // Block dimension; must divide n.
    uint64_t seed = 3;
  };

  explicit LuApp(Params params) : params_(params) {}

  std::string name() const override { return "LU"; }
  std::string input_description() const override {
    return std::to_string(params_.n) + "x" + std::to_string(params_.n) + ", B=" +
           std::to_string(params_.block);
  }
  std::string sync_description() const override { return "barrier"; }
  InstructionMix instruction_mix() const override;

  void Setup(DsmSystem& system) override;
  void Run(NodeContext& ctx) override;
  bool Verify() const override { return verified_ok_; }

 private:
  size_t Index(int row, int col) const { return static_cast<size_t>(row) * params_.n + col; }
  // Owner of block (bi, bj) under 2-D round-robin distribution.
  int OwnerOf(int bi, int bj, int num_nodes) const {
    const int nb = params_.n / params_.block;
    return (bi * nb + bj) % num_nodes;
  }
  float InitialValue(int row, int col) const;

  Params params_;
  SharedArray<float> a_;
  bool verified_ok_ = false;
};

}  // namespace cvm

#endif  // CVM_APPS_LU_H_
