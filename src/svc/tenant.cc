#include "src/svc/tenant.h"

#include <algorithm>

namespace cvm::svc {

bool ValidTenantId(const std::string& id) {
  if (id.empty() || id.size() > 32) {
    return false;
  }
  return std::all_of(id.begin(), id.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_' || c == '-';
  });
}

std::string TenantMetricName(const std::string& tenant, const std::string& suffix) {
  return "tenant." + tenant + "." + suffix;
}

std::vector<RaceReport> TenantRegion::ScopeReports(std::vector<RaceReport> reports) const {
  std::vector<RaceReport> scoped;
  scoped.reserve(reports.size());
  for (RaceReport& report : reports) {
    if (Contains(report.addr)) {
      scoped.push_back(std::move(report));
    }
  }
  return scoped;
}

}  // namespace cvm::svc
