// Admission control and scheduling for the DSM service: a bounded queue of
// workload requests in front of a small pool of warm fabrics. Admission
// rejects (rather than blocks) on a full queue, an unknown app, an invalid
// tenant id, or a tenant table overflow — the service degrades by shedding
// load, never by wedging. Dispatch honors a per-tenant concurrency cap and
// one of two policies:
//
//   kFifo      — oldest admitted request whose tenant is under its cap.
//   kFairShare — tenant with the least service so far (running + completed)
//                first; ties break lexicographically, then oldest request.
//
// The scheduler is policy only: it never touches a DsmSystem. Workers call
// Next() (blocking) / OnComplete(); tests drive the same logic through the
// non-blocking TryNext().
#ifndef CVM_SVC_SCHEDULER_H_
#define CVM_SVC_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "src/fault/fault.h"

namespace cvm::svc {

enum class SchedPolicy : uint8_t {
  kFifo,
  kFairShare,
};

const char* PolicyName(SchedPolicy policy);
std::optional<SchedPolicy> ParsePolicy(const std::string& name);

// One admitted (or submitted) unit of work: run `app` at `size` for `tenant`,
// optionally under a fault profile. The request's fault plan perturbs only
// the run that serves it — per-tenant chaos, not service-wide.
struct WorkloadRequest {
  uint64_t id = 0;  // Assigned at admission; 0 = not yet admitted.
  std::string tenant;
  std::string app;
  int64_t size = -1;       // <= 0 keeps the app's default scale.
  uint64_t seed = 0;       // 0 keeps the app's default input.
  fault::FaultProfile fault_profile = fault::FaultProfile::kOff;
  double fault_drop = -1;  // < 0 keeps the profile's drop rate.
  // Marks a requested crash as transient: the service disarms the crash on
  // retry attempts, modeling the node coming back after reboot. A permanent
  // crash (false) recurs on every retry until the budget is spent.
  bool fault_crash_reboot = false;
  // Retry attempt this dispatch represents: 0 on first admission, bumped by
  // the service each time a crash-failed run is requeued.
  uint32_t attempt = 0;
  uint64_t submit_seq = 0; // Admission order; the FIFO key.
  std::chrono::steady_clock::time_point submitted_at{};
};

struct SchedulerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t retried = 0;  // Crash-failed dispatches returned via Requeue().
};

// Per-tenant accounting, exposed for the service's tables and metrics.
struct TenantCounts {
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t retried = 0;
  int running = 0;
};

class Scheduler {
 public:
  Scheduler(SchedPolicy policy, size_t queue_capacity, int per_tenant_cap,
            size_t max_tenants);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Admission: assigns id/submit_seq/submitted_at, enqueues, and returns the
  // id; returns 0 with a reason ("queue full", ...) on rejection. Never
  // blocks.
  uint64_t Submit(WorkloadRequest request, std::string* reject_reason = nullptr);

  // Records an admission rejection decided outside the scheduler (the
  // service rejects unknown apps before they reach the queue) so the
  // submitted/rejected accounting stays in one place.
  void RecordRejected(const std::string& tenant);

  // Blocking dispatch: waits for a dispatchable request (queued, tenant under
  // cap) or shutdown. Returns nullopt only after Shutdown() once the queue
  // has drained — workers use it as their loop condition.
  std::optional<WorkloadRequest> Next();

  // Non-blocking dispatch for tests and the drain path.
  std::optional<WorkloadRequest> TryNext();

  // Marks one of `tenant`'s running requests finished.
  void OnComplete(const std::string& tenant);

  // Returns a crash-failed dispatch to the queue for another attempt. The
  // request was already admitted, so admission checks (queue capacity,
  // tenant-table bound, shutdown) do not reapply and the call never rejects
  // — a retry is owed, not requested. The tenant's running count drops
  // without counting a completion. Keeps the original id/submit_seq, so
  // FIFO still orders the retry by its first admission.
  void Requeue(WorkloadRequest request);

  // Stops admission; queued requests still dispatch (drain semantics).
  void Shutdown();

  // Blocks until nothing is queued or running.
  void WaitIdle();

  size_t QueueDepth() const;
  SchedulerStats stats() const;
  std::map<std::string, TenantCounts> tenant_counts() const;

 private:
  // Index into queue_ of the next dispatchable request under the policy, or
  // nullopt if every queued tenant is at its cap (or the queue is empty).
  std::optional<size_t> PickLocked() const;

  const SchedPolicy policy_;
  const size_t queue_capacity_;
  const int per_tenant_cap_;
  const size_t max_tenants_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<WorkloadRequest> queue_;
  std::map<std::string, TenantCounts> tenants_;
  SchedulerStats stats_;
  uint64_t next_id_ = 1;
  bool shutdown_ = false;
};

}  // namespace cvm::svc

#endif  // CVM_SVC_SCHEDULER_H_
