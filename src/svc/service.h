// DsmService: the always-on, multi-tenant face of the simulator
// (docs/SERVICE.md). Instead of one process per workload (build a DsmSystem,
// run, tear down), the service keeps a small pool of *warm* fabrics — each a
// full DsmSystem with its segment backing store, network, detector, and
// observability already constructed — and serves an admission-controlled
// queue of workload requests. Between requests a worker calls
// DsmSystem::Reset(), which is cheap (re-zero only dirty segment bytes, clear
// counters) compared to a cold construction (zero-fill the whole segment,
// allocate everything); the service bench quantifies the difference.
//
// Isolation model: a worker fabric serves one workload at a time, so tenants
// never share a segment concurrently. Each completed workload's detection
// output is scoped to its TenantRegion, its metrics land in the
// tenant.<id>.* namespace, and its span lands on the tenant's trace track.
// Because Reset() restores a fabric bit-identically, one tenant running
// under a fault profile cannot perturb another tenant's reports — the
// isolation chaos test asserts exactly that.
#ifndef CVM_SVC_SERVICE_H_
#define CVM_SVC_SERVICE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/dsm/dsm.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/svc/scheduler.h"
#include "src/svc/tenant.h"

namespace cvm::svc {

struct ServiceConfig {
  int workers = 2;          // Warm fabrics (each runs one workload at a time).
  int nodes = 4;            // DSM nodes per fabric.
  uint64_t page_size = 4096;
  uint64_t max_shared_bytes = 32ull << 20;
  ProtocolKind protocol = ProtocolKind::kSingleWriterLrc;
  DetectionPipeline pipeline = DetectionPipeline::kSerial;
  // Detection/barrier scaling knobs, forwarded verbatim into every fabric's
  // DsmOptions (see src/dsm/options.h for semantics and defaults).
  int detect_shards = 0;
  int detect_batch = 1;
  bool barrier_tree = false;
  int barrier_fanout = 4;
  bool intern_bitmaps = false;
  bool warm = true;         // false: fresh DsmSystem per workload (cold baseline).
  SchedPolicy policy = SchedPolicy::kFifo;
  size_t queue_capacity = 64;
  int per_tenant_cap = 2;
  size_t max_tenants = 8;
  // Crash recovery (docs/FAULTS.md "Crash faults & recovery"): a workload
  // whose run ends with recovery.crashed is requeued up to retry_budget
  // times, with capped exponential backoff between attempts
  // (min(base << attempt, cap)). The crashed fabric itself is quarantined —
  // destroyed and rebuilt fresh — never Reset()-reused.
  int retry_budget = 2;
  double retry_backoff_base_s = 0.001;
  double retry_backoff_cap_s = 0.050;
  // Service-level observability: per-tenant counters/latency metrics and one
  // trace track per tenant (workload spans). Independent of any per-run
  // tracing inside the fabrics; no-ops when built with -DCVM_OBS=OFF.
  bool observability = true;
};

// Everything the service records about one served workload.
struct WorkloadOutcome {
  WorkloadRequest request;
  int worker = -1;
  // False on a worker's first workload (the fabric was built for it) and
  // always in cold mode; true when the fabric was Reset()-reused.
  bool warm_reuse = false;
  bool verified = false;
  // Crash recovery: the final run's CrashOutcome, how many retry attempts
  // preceded it, and whether the workload was abandoned with its retry
  // budget spent. Crashed-and-requeued attempts record no outcome of their
  // own — only the final attempt lands here (retries are visible through
  // tenant.<id>.retries / svc.fabric.rebuilds and the scheduler stats).
  CrashOutcome recovery;
  uint32_t attempts = 0;  // Retries before this outcome (0 = first try).
  bool failed = false;    // Crashed with no retry budget left.
  std::vector<RaceReport> races;  // Region-scoped.
  TenantRegion region;
  uint64_t dispatch_unhandled = 0;
  fault::FaultStats fault;        // All-zero unless the request asked for faults.
  double sim_time_ns = 0;
  double queue_s = 0;    // Submit -> dispatch to a worker.
  double service_s = 0;  // Dispatch -> completion (setup + run + verify + reset).
  double total_s = 0;    // Submit -> completion.
};

class DsmService {
 public:
  explicit DsmService(ServiceConfig config);
  ~DsmService();  // Stops (draining queued work) if still running.

  DsmService(const DsmService&) = delete;
  DsmService& operator=(const DsmService&) = delete;

  void Start();

  // Admission: id (> 0) on success; 0 with a reason on rejection. Requests
  // for unknown apps are rejected here, before they reach the queue.
  uint64_t Submit(WorkloadRequest request, std::string* reject_reason = nullptr);

  // Blocks until every admitted request has completed.
  void Drain();

  // Stops admission, drains the queue, joins the workers. Idempotent.
  void Stop();

  // Completed workloads, in completion order. Copy — safe while running.
  std::vector<WorkloadOutcome> outcomes() const;

  const ServiceConfig& config() const { return config_; }
  const Scheduler& scheduler() const { return scheduler_; }

  // Service-level observability; null when config.observability is false or
  // the obs layer is compiled out. The tracer has one track per tenant slot.
  obs::MetricsRegistry* metrics() { return metrics_.get(); }
  obs::Tracer* tracer() { return tracer_.get(); }

  // The trace track (node id) assigned to a tenant, or -1 before its first
  // admitted request.
  int TenantTrack(const std::string& tenant) const;

 private:
  void WorkerLoop(int worker_index);
  WorkloadOutcome Serve(int worker_index, std::unique_ptr<DsmSystem>& system,
                        WorkloadRequest request);
  void RecordOutcome(const WorkloadOutcome& outcome);
  // Metrics + trace for one crashed-and-about-to-be-requeued attempt.
  void RecordRetry(const WorkloadOutcome& outcome);

  ServiceConfig config_;
  Scheduler scheduler_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex mu_;
  std::vector<WorkloadOutcome> outcomes_;
  std::map<std::string, int> tenant_tracks_;  // Tenant -> trace track (node id).
};

}  // namespace cvm::svc

#endif  // CVM_SVC_SERVICE_H_
