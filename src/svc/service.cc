#include "src/svc/service.h"

#include <algorithm>
#include <chrono>

#include "src/apps/app_catalog.h"
#include "src/common/check.h"

namespace cvm::svc {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

// Trace events store string pointers, not copies; the catalog's canonical
// name list provides stable storage for app-name args.
const char* StableAppName(const std::string& app) {
  for (const std::string& name : CatalogAppNames()) {
    if (name == app) {
      return name.c_str();
    }
  }
  return "?";
}

}  // namespace

DsmService::DsmService(ServiceConfig config)
    : config_(config),
      scheduler_(config.policy, config.queue_capacity, config.per_tenant_cap,
                 config.max_tenants) {
  CVM_CHECK_GT(config_.workers, 0);
  CVM_CHECK_GT(config_.nodes, 0);
  if constexpr (obs::kObsCompiledIn) {
    if (config_.observability) {
      metrics_ = std::make_unique<obs::MetricsRegistry>();
      obs::TraceConfig trace;
      trace.trace_enabled = true;
      trace.flow_events = false;  // Workload spans form no cross-track chains.
      tracer_ = std::make_unique<obs::Tracer>(static_cast<int>(config_.max_tenants), trace);
    }
  }
}

DsmService::~DsmService() { Stop(); }

void DsmService::Start() {
  CVM_CHECK(!started_) << "Start() called twice";
  started_ = true;
  workers_.reserve(static_cast<size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

uint64_t DsmService::Submit(WorkloadRequest request, std::string* reject_reason) {
  if (!KnownCatalogApp(request.app)) {
    scheduler_.RecordRejected(request.tenant);
    if (reject_reason != nullptr) {
      *reject_reason = "unknown app '" + request.app + "'";
    }
    return 0;
  }
  const std::string tenant = request.tenant;
  const uint64_t id = scheduler_.Submit(std::move(request), reject_reason);
  if (id != 0) {
    std::lock_guard<std::mutex> guard(mu_);
    if (tenant_tracks_.find(tenant) == tenant_tracks_.end()) {
      tenant_tracks_[tenant] = static_cast<int>(tenant_tracks_.size());
    }
  }
  return id;
}

void DsmService::Drain() { scheduler_.WaitIdle(); }

void DsmService::Stop() {
  if (!started_ || stopped_) {
    return;
  }
  stopped_ = true;
  scheduler_.Shutdown();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

void DsmService::WorkerLoop(int worker_index) {
  // Each worker owns one fabric; in warm mode it survives across requests
  // (Reset() between them), in cold mode Serve() builds and tears down a
  // fresh one per request.
  std::unique_ptr<DsmSystem> system;
  while (std::optional<WorkloadRequest> request = scheduler_.Next()) {
    const std::string tenant = request->tenant;
    WorkloadOutcome outcome = Serve(worker_index, system, std::move(*request));
    if (outcome.recovery.crashed) {
      // Quarantine: a fabric that hosted a dead node is never Reset()-reused
      // — the next workload on this worker gets a fresh build.
      if (system != nullptr) {
        system.reset();
        if constexpr (obs::kObsCompiledIn) {
          if (metrics_ != nullptr) {
            metrics_->counter("svc.fabric.rebuilds")->Increment();
          }
        }
      }
      if (static_cast<int>(outcome.request.attempt) < config_.retry_budget) {
        RecordRetry(outcome);
        WorkloadRequest retry = outcome.request;
        retry.attempt++;
        // Capped exponential backoff before the retry re-enters the queue;
        // the shift is bounded by the (small) retry budget.
        const double backoff_s =
            std::min(config_.retry_backoff_base_s *
                         static_cast<double>(1u << std::min(retry.attempt, 20u)),
                     config_.retry_backoff_cap_s);
        if (backoff_s > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
        }
        scheduler_.Requeue(std::move(retry));
        continue;  // No outcome, no OnComplete: the workload is still owed.
      }
      outcome.failed = true;  // Budget spent; the workload fails for good.
    }
    RecordOutcome(outcome);
    scheduler_.OnComplete(tenant);
  }
}

WorkloadOutcome DsmService::Serve(int worker_index, std::unique_ptr<DsmSystem>& system,
                                  WorkloadRequest request) {
  const auto dispatched_at = std::chrono::steady_clock::now();

  WorkloadOutcome outcome;
  outcome.worker = worker_index;
  outcome.queue_s = SecondsSince(request.submitted_at, dispatched_at);

  // The request's fault plan, seeded like cvm_run: the workload seed doubles
  // as the fault seed so one number reproduces a faulty run.
  fault::FaultPlan plan =
      fault::FaultPlan::FromProfile(request.fault_profile,
                                    request.seed != 0 ? request.seed : 1);
  if (request.fault_drop >= 0) {
    plan.drop_prob = request.fault_drop;
  }
  plan.crash_reboot = request.fault_crash_reboot;
  if (plan.crash_enabled() && plan.crash_reboot && request.attempt > 0) {
    // Transient failure: the node is back after reboot, so retry attempts
    // run with the crash disarmed. Permanent crashes keep firing until the
    // retry budget is spent.
    plan.crash_epoch = -1;
  }

  const bool reuse = config_.warm && system != nullptr;
  if (reuse) {
    system->Reset();
    system->SetFaultPlan(plan);
  } else {
    DsmOptions options;
    options.num_nodes = config_.nodes;
    options.page_size = config_.page_size;
    options.max_shared_bytes = config_.max_shared_bytes;
    options.protocol = config_.protocol;
    options.detection_pipeline = config_.pipeline;
    options.detect_shards = config_.detect_shards;
    options.detect_batch = config_.detect_batch;
    options.barrier_tree = config_.barrier_tree;
    options.barrier_fanout = config_.barrier_fanout;
    options.intern_bitmaps = config_.intern_bitmaps;
    options.fault_plan = plan;
    system = std::make_unique<DsmSystem>(options);
  }
  outcome.warm_reuse = reuse;

  CatalogRequest catalog;
  catalog.app = request.app;
  catalog.size = request.size;
  catalog.seed = request.seed;
  catalog.page_size = config_.page_size;
  std::unique_ptr<ParallelApp> app = MakeCatalogApp(catalog);
  CVM_CHECK(app != nullptr) << "admission let through unknown app " << request.app;

  const GlobalAddr region_base = system->segment().used_bytes();
  app->Setup(*system);
  outcome.region = TenantRegion(request.tenant, region_base,
                                system->segment().used_bytes() - region_base);

  RunResult result = system->Run([&app](NodeContext& ctx) { app->Run(ctx); });

  outcome.verified = app->Verify();
  outcome.races = outcome.region.ScopeReports(std::move(result.races));
  outcome.dispatch_unhandled = result.dispatch_unhandled;
  outcome.fault = result.fault;
  outcome.recovery = result.recovery;
  outcome.attempts = request.attempt;
  outcome.sim_time_ns = result.sim_time_ns;

  if (!config_.warm) {
    system.reset();  // Cold baseline pays teardown inside service_s too.
  }

  const auto completed_at = std::chrono::steady_clock::now();
  outcome.service_s = SecondsSince(dispatched_at, completed_at);
  outcome.total_s = SecondsSince(request.submitted_at, completed_at);
  outcome.request = std::move(request);
  return outcome;
}

void DsmService::RecordRetry(const WorkloadOutcome& outcome) {
  const std::string& tenant = outcome.request.tenant;
  if constexpr (obs::kObsCompiledIn) {
    if (metrics_ != nullptr) {
      metrics_->counter(TenantMetricName(tenant, "retries"))->Increment();
      metrics_->counter("svc.retries")->Increment();
    }
    if (tracer_ != nullptr) {
      obs::TraceEvent event;
      event.name = "workload.retry";
      event.cat = "svc";
      event.phase = 'i';
      event.node = TenantTrack(tenant);
      event.wall_ts_ns = tracer_->WallNowNs();
      event.arg_name = "attempt";
      event.arg_value = outcome.request.attempt;
      event.arg2_name = "crash_node";
      event.arg2_value =
          outcome.recovery.crash_node == kNoNode
              ? 0
              : static_cast<uint64_t>(outcome.recovery.crash_node);
      event.str_arg_name = "app";
      event.str_arg_value = StableAppName(outcome.request.app);
      tracer_->Emit(event);
      tracer_->Drain(event.node);
    }
  }
}

void DsmService::RecordOutcome(const WorkloadOutcome& outcome) {
  const std::string& tenant = outcome.request.tenant;
  if constexpr (obs::kObsCompiledIn) {
    if (metrics_ != nullptr) {
      metrics_->counter(TenantMetricName(tenant, "completed"))->Increment();
      if (outcome.failed) {
        metrics_->counter(TenantMetricName(tenant, "failed"))->Increment();
        metrics_->counter("svc.failed")->Increment();
      }
      metrics_->counter(TenantMetricName(tenant, "races"))->Add(outcome.races.size());
      metrics_->counter(TenantMetricName(tenant, "unhandled"))
          ->Add(outcome.dispatch_unhandled);
      metrics_->histogram(TenantMetricName(tenant, "service_us"))
          ->Observe(static_cast<uint64_t>(outcome.service_s * 1e6));
      metrics_->histogram(TenantMetricName(tenant, "queue_us"))
          ->Observe(static_cast<uint64_t>(outcome.queue_s * 1e6));
      metrics_->counter("svc.completed")->Increment();
      metrics_->counter("svc.races")->Add(outcome.races.size());
    }
    if (tracer_ != nullptr) {
      obs::TraceEvent event;
      event.name = "workload";
      event.cat = "svc";
      event.phase = 'X';
      event.node = TenantTrack(tenant);
      const uint64_t dur_ns = static_cast<uint64_t>(outcome.service_s * 1e9);
      const uint64_t now_ns = tracer_->WallNowNs();
      event.wall_ts_ns = now_ns > dur_ns ? now_ns - dur_ns : 0;
      event.wall_dur_ns = dur_ns;
      event.arg_name = "races";
      event.arg_value = outcome.races.size();
      event.arg2_name = "warm";
      event.arg2_value = outcome.warm_reuse ? 1 : 0;
      event.str_arg_name = "app";
      event.str_arg_value = StableAppName(outcome.request.app);
      tracer_->Emit(event);
      tracer_->Drain(event.node);
    }
  }
  std::lock_guard<std::mutex> guard(mu_);
  outcomes_.push_back(outcome);
}

std::vector<WorkloadOutcome> DsmService::outcomes() const {
  std::lock_guard<std::mutex> guard(mu_);
  return outcomes_;
}

int DsmService::TenantTrack(const std::string& tenant) const {
  std::lock_guard<std::mutex> guard(mu_);
  const auto it = tenant_tracks_.find(tenant);
  return it == tenant_tracks_.end() ? -1 : it->second;
}

}  // namespace cvm::svc
