#include "src/svc/scheduler.h"

#include "src/common/check.h"
#include "src/svc/tenant.h"

namespace cvm::svc {

const char* PolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "fifo";
    case SchedPolicy::kFairShare:
      return "fair";
  }
  return "?";
}

std::optional<SchedPolicy> ParsePolicy(const std::string& name) {
  if (name == "fifo") {
    return SchedPolicy::kFifo;
  }
  if (name == "fair" || name == "fair-share") {
    return SchedPolicy::kFairShare;
  }
  return std::nullopt;
}

Scheduler::Scheduler(SchedPolicy policy, size_t queue_capacity, int per_tenant_cap,
                     size_t max_tenants)
    : policy_(policy),
      queue_capacity_(queue_capacity),
      per_tenant_cap_(per_tenant_cap),
      max_tenants_(max_tenants) {
  CVM_CHECK_GT(queue_capacity_, 0u);
  CVM_CHECK_GT(per_tenant_cap_, 0);
  CVM_CHECK_GT(max_tenants_, 0u);
}

uint64_t Scheduler::Submit(WorkloadRequest request, std::string* reject_reason) {
  std::lock_guard<std::mutex> guard(mu_);
  stats_.submitted++;
  auto reject = [&](const std::string& reason) -> uint64_t {
    stats_.rejected++;
    // Keep per-tenant rejection counts only for well-formed tenant ids; a
    // garbage id has no tenant row to charge.
    if (ValidTenantId(request.tenant)) {
      tenants_[request.tenant].rejected++;
    }
    if (reject_reason != nullptr) {
      *reject_reason = reason;
    }
    return 0;
  };
  if (shutdown_) {
    return reject("service shutting down");
  }
  if (!ValidTenantId(request.tenant)) {
    return reject("invalid tenant id '" + request.tenant +
                  "' (1-32 chars from [A-Za-z0-9_-])");
  }
  if (queue_.size() >= queue_capacity_) {
    return reject("queue full (" + std::to_string(queue_capacity_) + " queued)");
  }
  if (tenants_.find(request.tenant) == tenants_.end() &&
      tenants_.size() >= max_tenants_) {
    return reject("tenant table full (" + std::to_string(max_tenants_) + " tenants)");
  }
  request.id = next_id_++;
  request.submit_seq = request.id;
  request.submitted_at = std::chrono::steady_clock::now();
  tenants_[request.tenant].admitted++;
  stats_.admitted++;
  const uint64_t id = request.id;
  queue_.push_back(std::move(request));
  cv_.notify_all();
  return id;
}

void Scheduler::RecordRejected(const std::string& tenant) {
  std::lock_guard<std::mutex> guard(mu_);
  stats_.submitted++;
  stats_.rejected++;
  if (ValidTenantId(tenant)) {
    tenants_[tenant].rejected++;
  }
}

std::optional<size_t> Scheduler::PickLocked() const {
  std::optional<size_t> best;
  for (size_t i = 0; i < queue_.size(); ++i) {
    const WorkloadRequest& req = queue_[i];
    const auto it = tenants_.find(req.tenant);
    const int running = it == tenants_.end() ? 0 : it->second.running;
    if (running >= per_tenant_cap_) {
      continue;
    }
    if (!best.has_value()) {
      best = i;
      continue;
    }
    const WorkloadRequest& incumbent = queue_[*best];
    if (policy_ == SchedPolicy::kFifo) {
      if (req.submit_seq < incumbent.submit_seq) {
        best = i;
      }
      continue;
    }
    // Fair share: least-served tenant first, then name, then age.
    auto service_of = [this](const std::string& tenant) -> uint64_t {
      const auto t = tenants_.find(tenant);
      if (t == tenants_.end()) {
        return 0;
      }
      return t->second.completed + static_cast<uint64_t>(t->second.running);
    };
    const uint64_t req_service = service_of(req.tenant);
    const uint64_t inc_service = service_of(incumbent.tenant);
    if (req_service != inc_service) {
      if (req_service < inc_service) {
        best = i;
      }
    } else if (req.tenant != incumbent.tenant) {
      if (req.tenant < incumbent.tenant) {
        best = i;
      }
    } else if (req.submit_seq < incumbent.submit_seq) {
      best = i;
    }
  }
  return best;
}

std::optional<WorkloadRequest> Scheduler::Next() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const std::optional<size_t> pick = PickLocked();
    if (pick.has_value()) {
      WorkloadRequest request = std::move(queue_[*pick]);
      queue_.erase(queue_.begin() + static_cast<long>(*pick));
      tenants_[request.tenant].running++;
      return request;
    }
    if (shutdown_ && queue_.empty()) {
      return std::nullopt;
    }
    cv_.wait(lock);
  }
}

std::optional<WorkloadRequest> Scheduler::TryNext() {
  std::lock_guard<std::mutex> guard(mu_);
  const std::optional<size_t> pick = PickLocked();
  if (!pick.has_value()) {
    return std::nullopt;
  }
  WorkloadRequest request = std::move(queue_[*pick]);
  queue_.erase(queue_.begin() + static_cast<long>(*pick));
  tenants_[request.tenant].running++;
  return request;
}

void Scheduler::OnComplete(const std::string& tenant) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = tenants_.find(tenant);
  CVM_CHECK(it != tenants_.end()) << "OnComplete for unknown tenant " << tenant;
  CVM_CHECK_GT(it->second.running, 0);
  it->second.running--;
  it->second.completed++;
  stats_.completed++;
  cv_.notify_all();
}

void Scheduler::Requeue(WorkloadRequest request) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = tenants_.find(request.tenant);
  CVM_CHECK(it != tenants_.end()) << "Requeue for unknown tenant " << request.tenant;
  CVM_CHECK_GT(it->second.running, 0);
  it->second.running--;
  it->second.retried++;
  stats_.retried++;
  queue_.push_back(std::move(request));
  cv_.notify_all();
}

void Scheduler::Shutdown() {
  std::lock_guard<std::mutex> guard(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

void Scheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    if (!queue_.empty()) {
      return false;
    }
    for (const auto& [name, counts] : tenants_) {
      if (counts.running > 0) {
        return false;
      }
    }
    return true;
  });
}

size_t Scheduler::QueueDepth() const {
  std::lock_guard<std::mutex> guard(mu_);
  return queue_.size();
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

std::map<std::string, TenantCounts> Scheduler::tenant_counts() const {
  std::lock_guard<std::mutex> guard(mu_);
  return tenants_;
}

}  // namespace cvm::svc
