// Tenancy primitives for the always-on DSM service (docs/SERVICE.md).
//
// A *tenant* is a named client of the service; a *tenant region* is the
// shared-segment slice one of its admitted workloads lived in: the byte range
// the app's Setup() allocated on the worker fabric that served it. Race
// reports, write notices, and check-list hits all carry global addresses, so
// scoping detection output to a tenant is a range test — the region is the
// unit of blame. Because every workload starts from a Reset() segment,
// allocations begin at address 0 and a region-scoped report stream is
// byte-identical to the one a dedicated fresh process would print, which is
// what the isolation tests assert.
#ifndef CVM_SVC_TENANT_H_
#define CVM_SVC_TENANT_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/race/race_report.h"

namespace cvm::svc {

// Valid tenant ids keep metric names, trace track labels, and CSV columns
// printable: 1-32 chars from [A-Za-z0-9_-].
bool ValidTenantId(const std::string& id);

// "tenant.<id>.<suffix>" — the per-tenant metrics namespace.
std::string TenantMetricName(const std::string& tenant, const std::string& suffix);

class TenantRegion {
 public:
  TenantRegion() = default;
  TenantRegion(std::string tenant, GlobalAddr base, uint64_t size)
      : tenant_(std::move(tenant)), base_(base), size_(size) {}

  const std::string& tenant() const { return tenant_; }
  GlobalAddr base() const { return base_; }
  uint64_t size() const { return size_; }

  bool Contains(GlobalAddr addr) const { return addr >= base_ && addr < base_ + size_; }

  // Keeps only the reports whose racing word lies inside the region. The
  // service applies this to every RunResult so one tenant's reports never
  // name another tenant's addresses.
  std::vector<RaceReport> ScopeReports(std::vector<RaceReport> reports) const;

 private:
  std::string tenant_;
  GlobalAddr base_ = 0;
  uint64_t size_ = 0;
};

}  // namespace cvm::svc

#endif  // CVM_SVC_TENANT_H_
