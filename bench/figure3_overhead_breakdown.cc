// Reproduces Figure 3 ("Overhead Breakdown"): for each application, the
// race-detection overhead relative to the unaltered binary's runtime, split
// into the paper's five buckets — CVM Mods, Proc Call, Access Check,
// Intervals, Bitmaps.
//
// Paper shape: instrumentation (Proc Call + Access Check) averages 68% of
// total overhead; CVM Mods ~22%; interval comparison and bitmap retrieval
// are third/fourth at most. Total overhead per app is roughly 80–150% of the
// base runtime (slowdown ~2x).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace {

std::string Bar(double fraction) {
  const int cells = static_cast<int>(fraction * 100 + 0.5);
  return std::string(static_cast<size_t>(std::max(0, cells / 2)), '#');
}

}  // namespace

int main() {
  using namespace cvm;
  std::printf("=== Figure 3: Overhead Breakdown (%% of unaltered runtime, 8 procs) ===\n");

  TablePrinter table({"App", "CVM Mods", "Proc Call", "Access Check", "Intervals", "Bitmaps",
                      "Total"});
  std::vector<std::pair<std::string, double>> bars;
  double instr_share_sum = 0;
  int apps = 0;
  for (const bench::NamedApp& app : bench::PaperApps()) {
    WorkloadResult result = RunWorkloadMedian(app.factory, bench::PaperOptions(8), 3);
    std::vector<std::string> row = {result.app_name};
    for (int b = 0; b < kNumBuckets; ++b) {
      row.push_back(TablePrinter::Percent(result.OverheadFraction(static_cast<Bucket>(b)), 1));
    }
    row.push_back(TablePrinter::Percent(result.TotalOverheadFraction(), 1));
    table.AddRow(row);
    bars.emplace_back(result.app_name, result.TotalOverheadFraction());
    const double instr = result.OverheadFraction(Bucket::kProcCall) +
                         result.OverheadFraction(Bucket::kAccessCheck);
    if (result.TotalOverheadFraction() > 0) {
      instr_share_sum += instr / result.TotalOverheadFraction();
      ++apps;
    }
  }
  table.Print();

  std::printf("\nTotal overhead vs unaltered binary:\n");
  for (const auto& [name, fraction] : bars) {
    std::printf("  %-6s %6.1f%%  %s\n", name.c_str(), fraction * 100, Bar(fraction).c_str());
  }
  if (apps > 0) {
    std::printf("\nInstrumentation (Proc Call + Access Check) share of overhead: %.0f%% "
                "(paper: ~68%%)\n",
                100.0 * instr_share_sum / apps);
  }
  return 0;
}
