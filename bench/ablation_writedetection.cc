// Ablation for §6.5: multi-writer protocol with writes mined from diffs
// instead of instrumented stores. The paper predicts ~17% of overall
// overhead eliminated (68% of overhead is instrumentation, ~25% of accesses
// are stores) at the price of a weaker guarantee: same-value overwrites
// become invisible.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace cvm;
  std::printf("=== Ablation (§6.5): store instrumentation vs diff-derived writes ===\n");

  TablePrinter table({"App", "Mode", "Slowdown", "Instr calls", "Races", "Overhead saved"});
  for (const bench::NamedApp& app : bench::PaperApps()) {
    DsmOptions options = bench::PaperOptions(8);
    options.protocol = ProtocolKind::kMultiWriterHomeLrc;

    options.write_detection = WriteDetection::kInstrumentation;
    WorkloadResult instr = RunWorkloadMedian(app.factory, options, 3);

    options.write_detection = WriteDetection::kDiffs;
    WorkloadResult diffs = RunWorkloadMedian(app.factory, options, 3);

    const double saved =
        instr.TotalOverheadFraction() > 0
            ? 1.0 - diffs.TotalOverheadFraction() / instr.TotalOverheadFraction()
            : 0.0;
    table.AddRow({instr.app_name, "instrumented stores",
                  TablePrinter::Fixed(instr.Slowdown(), 2),
                  TablePrinter::WithThousands(instr.detect.access.instrumented_calls),
                  std::to_string(instr.detect.races.size()), "-"});
    table.AddRow({"", "diff-derived writes", TablePrinter::Fixed(diffs.Slowdown(), 2),
                  TablePrinter::WithThousands(diffs.detect.access.instrumented_calls),
                  std::to_string(diffs.detect.races.size()),
                  TablePrinter::Percent(saved, 1)});
  }
  table.Print();
  std::printf("\nPaper: dropping store instrumentation should eliminate >=17%% of overall\n"
              "overhead; races on same-value overwrites may be missed (weaker guarantee).\n");
  return 0;
}
