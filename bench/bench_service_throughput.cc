// Service throughput bench (docs/SERVICE.md): the always-on case for the
// warm DsmService. Plays the same multi-tenant request mix through the
// service twice — cold (a fresh fabric per workload, the one-process-per-run
// baseline) and warm (Reset()-reused fabrics) — and reports workloads/sec
// plus p50/p99 completion latency per mode. The warm win is start-up cost:
// a cold construction zero-fills the whole shared segment and rebuilds the
// network/detector, while Reset() re-zeroes only the bytes the previous
// workload dirtied.
//
// Writes BENCH_service.json (validated by tools/check_bench_json.py, which
// asserts warm p50 < cold p50) and prints a human-readable table.
//
// Usage: bench_service_throughput [--smoke]
//   --smoke   smaller inputs and fewer repetitions for CI
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/svc/service.h"

namespace {

using namespace cvm;

constexpr int kWorkers = 1;  // Serialized: latencies compare fabrics, not host load.
constexpr int kNodes = 4;

struct ModeResult {
  std::string mode;  // "cold" | "warm"
  uint64_t requests = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t warm_reuses = 0;
  double total_wall_s = 0;
  double p50_s = 0;
  double p99_s = 0;
  double mean_s = 0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

ModeResult RunMode(bool warm, int reps, bool smoke) {
  svc::ServiceConfig config;
  config.workers = kWorkers;
  config.nodes = kNodes;
  config.warm = warm;
  // A big segment makes the cold zero-fill honest: real deployments size the
  // segment for their largest tenant, not the current workload.
  config.max_shared_bytes = 64ull << 20;
  config.queue_capacity = 256;
  config.per_tenant_cap = 4;
  config.observability = false;  // Measure the fabrics, not the bookkeeping.

  struct MixEntry {
    const char* app;
    int64_t size;
  };
  const std::vector<MixEntry> mix = smoke
      ? std::vector<MixEntry>{{"fft", 32}, {"sor", 32}, {"water", 64}}
      : std::vector<MixEntry>{{"fft", 64}, {"sor", 128}, {"water", 125}};
  const std::vector<std::string> tenants = {"alpha", "beta", "gamma"};

  ModeResult result;
  result.mode = warm ? "warm" : "cold";

  svc::DsmService service(config);
  service.Start();
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const std::string& tenant : tenants) {
      for (const MixEntry& entry : mix) {
        svc::WorkloadRequest request;
        request.tenant = tenant;
        request.app = entry.app;
        request.size = entry.size;
        std::string reason;
        if (service.Submit(request, &reason) == 0) {
          std::fprintf(stderr, "error: rejected %s/%s: %s\n", tenant.c_str(), entry.app,
                       reason.c_str());
          std::exit(1);
        }
        ++result.requests;
      }
    }
    // One mix per drain: queueing delay stays bounded so completion latency
    // measures the fabrics, not queue depth.
    service.Drain();
  }
  service.Stop();
  result.total_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::vector<double> latencies;
  for (const svc::WorkloadOutcome& outcome : service.outcomes()) {
    if (!outcome.verified) {
      std::fprintf(stderr, "error: %s/%s failed verification\n",
                   outcome.request.tenant.c_str(), outcome.request.app.c_str());
      std::exit(1);
    }
    ++result.completed;
    result.warm_reuses += outcome.warm_reuse ? 1 : 0;
    latencies.push_back(outcome.service_s);
    result.mean_s += outcome.service_s;
  }
  result.rejected = service.scheduler().stats().rejected;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    result.p50_s = Percentile(latencies, 0.5);
    result.p99_s = Percentile(latencies, 0.99);
    result.mean_s /= static_cast<double>(latencies.size());
  }
  return result;
}

bool WriteServiceJson(const std::string& path, const std::vector<ModeResult>& modes) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "[\n";
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "  {\"mode\": \"%s\", \"workers\": %d, \"nodes\": %d, \"requests\": %llu, "
                  "\"completed\": %llu, \"rejected\": %llu, \"warm_reuses\": %llu, "
                  "\"workloads_per_sec\": %.3f, \"total_wall_s\": %.4f, "
                  "\"p50_latency_s\": %.6f, \"p99_latency_s\": %.6f, "
                  "\"mean_latency_s\": %.6f}%s\n",
                  m.mode.c_str(), kWorkers, kNodes,
                  static_cast<unsigned long long>(m.requests),
                  static_cast<unsigned long long>(m.completed),
                  static_cast<unsigned long long>(m.rejected),
                  static_cast<unsigned long long>(m.warm_reuses),
                  m.total_wall_s > 0 ? static_cast<double>(m.completed) / m.total_wall_s : 0.0,
                  m.total_wall_s, m.p50_s, m.p99_s, m.mean_s,
                  i + 1 < modes.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_service_throughput [--smoke]\n");
      return 2;
    }
  }
  const int reps = smoke ? 4 : 8;
  std::printf("service throughput: 3 tenants x 3 apps x %d rep(s), %d %s worker x %d nodes\n\n",
              reps, kWorkers, "cold-vs-warm", kNodes);

  std::vector<ModeResult> modes;
  modes.push_back(RunMode(/*warm=*/false, reps, smoke));
  modes.push_back(RunMode(/*warm=*/true, reps, smoke));

  TablePrinter table({"Mode", "Requests", "Done", "Warm reuses", "Wl/s", "p50 ms",
                      "p99 ms", "Mean ms"});
  for (const ModeResult& m : modes) {
    table.AddRow({m.mode, std::to_string(m.requests), std::to_string(m.completed),
                  std::to_string(m.warm_reuses),
                  TablePrinter::Fixed(m.total_wall_s > 0
                                          ? static_cast<double>(m.completed) / m.total_wall_s
                                          : 0.0, 2),
                  TablePrinter::Fixed(m.p50_s * 1e3, 2), TablePrinter::Fixed(m.p99_s * 1e3, 2),
                  TablePrinter::Fixed(m.mean_s * 1e3, 2)});
  }
  table.Print();

  const double cold_p50 = modes[0].p50_s;
  const double warm_p50 = modes[1].p50_s;
  std::printf("\nwarm p50 is %.2fx cold p50 (%.2f ms vs %.2f ms)\n",
              cold_p50 > 0 ? warm_p50 / cold_p50 : 0.0, warm_p50 * 1e3, cold_p50 * 1e3);

  if (!WriteServiceJson("BENCH_service.json", modes)) {
    std::fprintf(stderr, "error: cannot write BENCH_service.json\n");
    return 1;
  }
  std::printf("wrote BENCH_service.json\n");
  return 0;
}
