// Ablation for §6.4: reporting all races vs only "first" races. Barrier
// semantics order epochs totally, so every first race lives in the earliest
// racy epoch; the filter is the trivial online extension the paper sketches.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace cvm;
  std::printf("=== Ablation (§6.4): all races vs first races ===\n");

  TablePrinter table({"App", "All races", "First races", "Earliest racy epoch", "Reduction"});
  for (const bench::NamedApp& app : bench::PaperApps()) {
    DsmOptions options = bench::PaperOptions(8);
    WorkloadResult all = RunWorkloadDetectOnly(app.factory, options);
    const std::vector<RaceReport> first = FilterFirstRaces(all.detect.races);
    EpochId epoch = -1;
    if (!first.empty()) {
      epoch = first.front().epoch;
    }
    const double reduction =
        all.detect.races.empty()
            ? 0.0
            : 1.0 - static_cast<double>(first.size()) /
                        static_cast<double>(all.detect.races.size());
    table.AddRow({all.app_name, std::to_string(all.detect.races.size()),
                  std::to_string(first.size()),
                  epoch < 0 ? "-" : std::to_string(epoch),
                  TablePrinter::Percent(reduction, 1)});
  }
  table.Print();
  std::printf("\nPaper: \"all first races must occur in the same barrier epoch. Modifying\n"
              "our system to perform this check online is a trivial extension.\"\n");
  return 0;
}
