// Shared helpers for the evaluation harness: the paper-scale configuration
// of each application and the DSM options used across tables/figures.
#ifndef CVM_BENCH_BENCH_UTIL_H_
#define CVM_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/fft.h"
#include "src/apps/sor.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"
#include "src/apps/workload.h"

namespace cvm {
namespace bench {

inline constexpr uint64_t kPageSize = 4096;

inline DsmOptions PaperOptions(int nodes) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = kPageSize;
  options.max_shared_bytes = 32ull << 20;
  options.num_locks = 64;
  return options;
}

struct NamedApp {
  std::string name;
  AppFactory factory;
};

// The four applications at evaluation scale. Input sets are scaled to run in
// seconds on a laptop-class host while keeping the paper's structure (the
// paper itself was limited by message-size caps — §5.3); EXPERIMENTS.md
// records the exact inputs used for each reproduced row.
inline std::vector<NamedApp> PaperApps() {
  std::vector<NamedApp> apps;

  FftApp::Params fft;
  fft.rows = 128;
  fft.cols = 128;
  apps.push_back({"FFT", [fft] { return std::make_unique<FftApp>(fft); }});

  SorApp::Params sor;
  sor.rows = 258;
  sor.cols = 256;
  sor.iters = 4;
  sor.page_size = kPageSize;
  apps.push_back({"SOR", [sor] { return std::make_unique<SorApp>(sor); }});

  TspApp::Params tsp;
  tsp.num_cities = 13;
  tsp.prefix_depth = 3;
  tsp.page_size = kPageSize;
  apps.push_back({"TSP", [tsp] { return std::make_unique<TspApp>(tsp); }});

  WaterApp::Params water;
  water.molecules = 216;
  water.iters = 5;
  water.page_size = kPageSize;
  apps.push_back({"Water", [water] { return std::make_unique<WaterApp>(water); }});

  return apps;
}

}  // namespace bench
}  // namespace cvm

#endif  // CVM_BENCH_BENCH_UTIL_H_
