// Shared helpers for the evaluation harness: the paper-scale configuration
// of each application, the DSM options used across tables/figures, and the
// machine-readable result emitter the CI/plotting pipeline consumes.
#ifndef CVM_BENCH_BENCH_UTIL_H_
#define CVM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/fft.h"
#include "src/apps/sor.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"
#include "src/apps/workload.h"

namespace cvm {
namespace bench {

inline constexpr uint64_t kPageSize = 4096;

inline DsmOptions PaperOptions(int nodes) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = kPageSize;
  options.max_shared_bytes = 32ull << 20;
  options.num_locks = 64;
  return options;
}

struct NamedApp {
  std::string name;
  AppFactory factory;
};

// The four applications at evaluation scale. Input sets are scaled to run in
// seconds on a laptop-class host while keeping the paper's structure (the
// paper itself was limited by message-size caps — §5.3); EXPERIMENTS.md
// records the exact inputs used for each reproduced row.
inline std::vector<NamedApp> PaperApps() {
  std::vector<NamedApp> apps;

  FftApp::Params fft;
  fft.rows = 128;
  fft.cols = 128;
  apps.push_back({"FFT", [fft] { return std::make_unique<FftApp>(fft); }});

  SorApp::Params sor;
  sor.rows = 258;
  sor.cols = 256;
  sor.iters = 4;
  sor.page_size = kPageSize;
  apps.push_back({"SOR", [sor] { return std::make_unique<SorApp>(sor); }});

  TspApp::Params tsp;
  tsp.num_cities = 13;
  tsp.prefix_depth = 3;
  tsp.page_size = kPageSize;
  apps.push_back({"TSP", [tsp] { return std::make_unique<TspApp>(tsp); }});

  WaterApp::Params water;
  water.molecules = 216;
  water.iters = 5;
  water.page_size = kPageSize;
  apps.push_back({"Water", [water] { return std::make_unique<WaterApp>(water); }});

  return apps;
}

// One measured (app, protocol, processor-count) cell of Figure 4, with the
// raw times behind the slowdown so downstream tooling can recompute or
// re-aggregate without re-running the bench.
struct Fig4Row {
  std::string app;
  std::string protocol;  // "lazy" | "multi" | "eager"
  int procs = 0;
  double slowdown = 0;
  double sim_ms_detect = 0;  // Simulated critical-path time, detection on.
  double sim_ms_base = 0;    // ...and off.
  double wall_s_detect = 0;  // Host wall-clock seconds, detection on.
  double wall_s_base = 0;    // ...and off.
};

inline Fig4Row MakeFig4Row(const std::string& app, const std::string& protocol, int procs,
                           const WorkloadResult& result) {
  Fig4Row row;
  row.app = app;
  row.protocol = protocol;
  row.procs = procs;
  row.slowdown = result.Slowdown();
  row.sim_ms_detect = result.detect.sim_time_ns / 1e6;
  row.sim_ms_base = result.base.sim_time_ns / 1e6;
  row.wall_s_detect = result.detect.wall_seconds;
  row.wall_s_base = result.base.wall_seconds;
  return row;
}

// Writes the rows as a JSON array of objects. Hand-rolled: every value is a
// number or a plain identifier-like string, so no escaping is needed.
inline bool WriteFig4Json(const std::string& path, const std::vector<Fig4Row>& rows) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Fig4Row& row = rows[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "  {\"app\": \"%s\", \"protocol\": \"%s\", \"procs\": %d, "
                  "\"slowdown\": %.4f, \"sim_ms_detect\": %.3f, \"sim_ms_base\": %.3f, "
                  "\"wall_s_detect\": %.4f, \"wall_s_base\": %.4f}%s\n",
                  row.app.c_str(), row.protocol.c_str(), row.procs, row.slowdown,
                  row.sim_ms_detect, row.sim_ms_base, row.wall_s_detect, row.wall_s_base,
                  i + 1 < rows.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
  return static_cast<bool>(out);
}

}  // namespace bench
}  // namespace cvm

#endif  // CVM_BENCH_BENCH_UTIL_H_
