// Ablation: the barrier-time detection pipeline (§4 step 5, §6.2).
//
// Three configurations of the same check, all producing the same races:
//   serial       — the paper's prototype: master builds the check list alone,
//                  fetches full-page bitmaps, compares after the round ends.
//   sharded      — check-list construction sharded across a worker pool and
//                  master-local compares overlapped with the bitmap round.
//   distributed  — constituent nodes compare the pairs they own and ship
//                  back reports plus compressed bitmaps (BitmapCodec).
//
// The comparison metric is the master's simulated time inside the barrier
// check (PipelineStats::detect_ns) and the bitmap-round bytes — NOT total
// sim time, which is schedule-dependent (page-ownership migration varies
// run to run). Every cell is appended to BENCH_detector.json.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace cvm {
namespace {

struct ModeSpec {
  const char* name;
  DetectionPipeline pipeline;
  bool compress;
};

constexpr ModeSpec kModes[] = {
    {"serial", DetectionPipeline::kSerial, false},
    {"sharded", DetectionPipeline::kSharded, false},
    {"distributed", DetectionPipeline::kDistributed, true},
};

struct Cell {
  std::string app;
  std::string mode;
  int procs = 0;
  bool compress = false;
  uint64_t detect_epochs = 0;
  double detect_ns_per_epoch = 0;
  double bytes_raw_per_epoch = 0;
  double bytes_wire_per_epoch = 0;
  double overlap_saved_ns_per_epoch = 0;
  uint64_t shards = 0;
  uint64_t remote_pairs = 0;
  uint64_t remote_reports = 0;
  size_t races = 0;
  bool exact_match = false;       // Full report stream identical to serial.
  bool structural_match = false;  // Same (kind, symbol) race set as serial.
};

// The full report stream, order-preserving: byte-identical across modes for
// the deterministic apps (Water, FFT, SOR).
std::string ExactKey(const RunResult& result) {
  std::string key;
  for (const RaceReport& report : result.races) {
    key += report.ToString();
    key += '\n';
  }
  return key;
}

// Order- and word-insensitive: TSP's branch-and-bound prunes differently run
// to run, so only the set of racy (kind, symbol) sites is stable.
std::set<std::string> StructuralKey(const RunResult& result) {
  std::set<std::string> key;
  for (const RaceReport& report : result.races) {
    key.insert(std::string(report.kind == RaceKind::kWriteWrite ? "WW:" : "RW:") +
               report.symbol);
  }
  return key;
}

bool WriteDetectorJson(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "[\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    char buffer[640];
    std::snprintf(
        buffer, sizeof(buffer),
        "  {\"app\": \"%s\", \"mode\": \"%s\", \"procs\": %d, \"compress\": %s, "
        "\"detect_epochs\": %llu, \"detect_ns_per_epoch\": %.1f, "
        "\"bitmap_bytes_raw_per_epoch\": %.1f, \"bitmap_bytes_wire_per_epoch\": %.1f, "
        "\"overlap_saved_ns_per_epoch\": %.1f, \"shards\": %llu, "
        "\"remote_pairs_compared\": %llu, \"remote_reports\": %llu, \"races\": %zu, "
        "\"reports_exact_match\": %s, \"reports_structural_match\": %s}%s\n",
        c.app.c_str(), c.mode.c_str(), c.procs, c.compress ? "true" : "false",
        static_cast<unsigned long long>(c.detect_epochs), c.detect_ns_per_epoch,
        c.bytes_raw_per_epoch, c.bytes_wire_per_epoch, c.overlap_saved_ns_per_epoch,
        static_cast<unsigned long long>(c.shards),
        static_cast<unsigned long long>(c.remote_pairs),
        static_cast<unsigned long long>(c.remote_reports), c.races,
        c.exact_match ? "true" : "false", c.structural_match ? "true" : "false",
        i + 1 < cells.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
  return static_cast<bool>(out);
}

// Cut-down inputs so the CI smoke step finishes in seconds: two compute
// epochs per app, Water and FFT only (the acceptance pair).
std::vector<bench::NamedApp> SmokeApps() {
  std::vector<bench::NamedApp> apps;
  FftApp::Params fft;
  fft.rows = 64;
  fft.cols = 64;
  apps.push_back({"FFT", [fft] { return std::make_unique<FftApp>(fft); }});
  WaterApp::Params water;
  water.molecules = 64;
  water.iters = 2;
  water.page_size = bench::kPageSize;
  apps.push_back({"Water", [water] { return std::make_unique<WaterApp>(water); }});
  return apps;
}

}  // namespace
}  // namespace cvm

int main(int argc, char** argv) {
  using namespace cvm;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  const int procs = 8;
  std::printf("=== Ablation: detection pipeline (serial vs sharded vs distributed) ===\n");

  TablePrinter table({"App", "Mode", "Detect us/epoch", "Raw B/epoch", "Wire B/epoch",
                      "Overlap us/epoch", "Races", "Reports"});
  std::vector<Cell> cells;
  bool reports_ok = true;
  const std::vector<bench::NamedApp> apps = smoke ? SmokeApps() : bench::PaperApps();
  for (const bench::NamedApp& app : apps) {
    std::string serial_exact;
    std::set<std::string> serial_structural;
    for (const ModeSpec& mode : kModes) {
      DsmOptions options = bench::PaperOptions(procs);
      options.detection_pipeline = mode.pipeline;
      options.compress_bitmaps = mode.compress;
      // Pin the shard count so the charged critical path does not depend on
      // the host's core count (the merge is order-deterministic regardless).
      options.detect_shards = smoke ? 2 : 4;
      WorkloadResult result = RunWorkloadDetectOnly(app.factory, options);

      Cell cell;
      cell.app = result.app_name;
      cell.mode = mode.name;
      cell.procs = procs;
      cell.compress = mode.compress;
      const PipelineStats& p = result.detect.pipeline;
      cell.detect_epochs = p.detect_epochs;
      const double epochs = p.detect_epochs > 0 ? static_cast<double>(p.detect_epochs) : 1.0;
      cell.detect_ns_per_epoch = p.detect_ns / epochs;
      cell.bytes_raw_per_epoch = static_cast<double>(p.bitmap_bytes_raw) / epochs;
      cell.bytes_wire_per_epoch = static_cast<double>(p.bitmap_bytes_wire) / epochs;
      cell.overlap_saved_ns_per_epoch = p.overlap_saved_ns / epochs;
      cell.shards = p.shards_used;
      cell.remote_pairs = p.remote_pairs_compared;
      cell.remote_reports = p.remote_reports;
      cell.races = result.detect.races.size();

      if (mode.pipeline == DetectionPipeline::kSerial) {
        serial_exact = ExactKey(result.detect);
        serial_structural = StructuralKey(result.detect);
        cell.exact_match = true;
        cell.structural_match = true;
      } else {
        cell.exact_match = ExactKey(result.detect) == serial_exact;
        cell.structural_match = StructuralKey(result.detect) == serial_structural;
        // TSP's search order is schedule-dependent; only the structural set
        // is required to agree there. Everything else must match exactly.
        const bool required = cell.app == "TSP" ? cell.structural_match : cell.exact_match;
        if (!required) {
          reports_ok = false;
          std::fprintf(stderr, "FAIL: %s/%s reports diverge from serial\n", cell.app.c_str(),
                       cell.mode.c_str());
        }
      }

      table.AddRow({mode.pipeline == DetectionPipeline::kSerial ? cell.app : "",
                    cell.mode, TablePrinter::Fixed(cell.detect_ns_per_epoch / 1e3, 1),
                    TablePrinter::Fixed(cell.bytes_raw_per_epoch, 0),
                    TablePrinter::Fixed(cell.bytes_wire_per_epoch, 0),
                    TablePrinter::Fixed(cell.overlap_saved_ns_per_epoch / 1e3, 1),
                    std::to_string(cell.races),
                    cell.exact_match ? "exact" : (cell.structural_match ? "struct" : "DIFF")});
      cells.push_back(cell);
    }
  }
  table.Print();

  const char* json_path = "BENCH_detector.json";
  if (!WriteDetectorJson(json_path, cells)) {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return 1;
  }
  std::printf("\nWrote %zu cells to %s\n", cells.size(), json_path);
  std::printf(
      "Distributed mode ships compressed bitmaps to pair owners, so the wire\n"
      "column falls well below the raw column while the race reports stay\n"
      "byte-identical to the serial paper pipeline (structural for TSP).\n");
  return reports_ok ? 0 : 1;
}
