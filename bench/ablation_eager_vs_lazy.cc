// Ablation: LAZY release consistency vs EAGER release consistency — the
// comparison that motivates the paper's whole substrate (§3.1). Under ERC a
// releaser pushes write notices to every node and blocks for acks; under LRC
// the notices ride on later synchronization messages to exactly the nodes
// that synchronize. The race detector consumes identical interval metadata
// either way.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace cvm;
  std::printf("=== Ablation (§3.1): lazy vs eager release consistency ===\n");

  TablePrinter table({"App", "Consistency", "Messages", "MBytes", "Slowdown", "Races"});
  for (const bench::NamedApp& app : bench::PaperApps()) {
    const struct {
      ProtocolKind kind;
      bool lazy;
    } kProtocols[] = {
        {ProtocolKind::kSingleWriterLrc, true},
        {ProtocolKind::kEagerRcInvalidate, false},
    };
    for (const auto& protocol : kProtocols) {
      DsmOptions options = bench::PaperOptions(8);
      options.protocol = protocol.kind;
      WorkloadResult result = RunWorkloadMedian(app.factory, options, 3);
      const bool lazy = protocol.lazy;
      uint64_t erc_msgs = 0;
      auto it = result.detect.net.messages_by_kind.find("ErcUpdate");
      if (it != result.detect.net.messages_by_kind.end()) {
        erc_msgs = it->second;
      }
      table.AddRow({lazy ? result.app_name : "", lazy ? "lazy (LRC)" : "eager (ERC)",
                    TablePrinter::WithThousands(result.detect.net.messages) +
                        (erc_msgs ? " (" + TablePrinter::WithThousands(erc_msgs) + " pushes)"
                                  : ""),
                    TablePrinter::Fixed(static_cast<double>(result.detect.net.bytes) / 1e6, 1),
                    TablePrinter::Fixed(result.Slowdown(), 2),
                    std::to_string(result.detect.races.size())});
    }
  }
  table.Print();
  std::printf("\nERC multiplies synchronization-time messages (every dirty release fans\n"
              "out to p-1 nodes and waits); LRC defers and piggybacks. Race detection\n"
              "results are unaffected: the ordering metadata is identical.\n");
  return 0;
}
