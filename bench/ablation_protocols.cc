// Ablation: single-writer LRC (the paper's prototype substrate) vs the
// multi-writer home-based variant. §6.2 notes the large page size
// exacerbates single-writer false-sharing ping-pong; the race-detection
// algorithm "will work identically with CVM's multi-writer protocol".
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace cvm;
  std::printf("=== Ablation: single-writer vs multi-writer (home-based) LRC ===\n");

  TablePrinter table({"App", "Protocol", "Page faults", "Messages", "MBytes", "Slowdown",
                      "Races"});
  for (const bench::NamedApp& app : bench::PaperApps()) {
    const struct {
      ProtocolKind kind;
      const char* label;
      bool leads_group;  // First row of an app group carries the app name.
    } kProtocols[] = {
        {ProtocolKind::kSingleWriterLrc, "single-writer", true},
        {ProtocolKind::kMultiWriterHomeLrc, "multi-writer home", false},
    };
    for (const auto& protocol : kProtocols) {
      DsmOptions options = bench::PaperOptions(8);
      options.protocol = protocol.kind;
      WorkloadResult result = RunWorkloadMedian(app.factory, options, 3);
      table.AddRow({protocol.leads_group ? result.app_name : "", protocol.label,
                    TablePrinter::WithThousands(result.detect.page_faults),
                    TablePrinter::WithThousands(result.detect.net.messages),
                    TablePrinter::Fixed(static_cast<double>(result.detect.net.bytes) / 1e6, 1),
                    TablePrinter::Fixed(result.Slowdown(), 2),
                    std::to_string(result.detect.races.size())});
    }
  }
  table.Print();
  std::printf("\nThe detector reports the same true races under either protocol; the\n"
              "substrate changes only fault/traffic behaviour (§6.2, §6.5).\n");
  return 0;
}
