// Ablation for §6.5's first enhancement: ATOM could not inline
// instrumentation — only procedure calls can be inserted — and the paper
// measures ~6.7% of total overhead going to the call itself, to disappear
// with the promised inlining-capable ATOM (as Shasta demonstrated). We model
// inlining by zeroing the per-access procedure-call cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace cvm;
  std::printf("=== Ablation (§6.5): call-based vs inlined instrumentation ===\n");

  TablePrinter table({"App", "Slowdown (call)", "Slowdown (inlined)", "Proc-call share",
                      "Overhead eliminated"});
  double share_sum = 0;
  int apps = 0;
  for (const bench::NamedApp& app : bench::PaperApps()) {
    DsmOptions options = bench::PaperOptions(8);
    WorkloadResult call = RunWorkloadMedian(app.factory, options, 3);

    options.costs.proc_call_ns = 0;  // The inlined analysis body remains.
    WorkloadResult inlined = RunWorkloadMedian(app.factory, options, 3);

    const double share = call.TotalOverheadFraction() > 0
                             ? call.OverheadFraction(Bucket::kProcCall) /
                                   call.TotalOverheadFraction()
                             : 0;
    const double eliminated =
        call.TotalOverheadFraction() > 0
            ? 1.0 - inlined.TotalOverheadFraction() / call.TotalOverheadFraction()
            : 0;
    share_sum += share;
    ++apps;
    table.AddRow({call.app_name, TablePrinter::Fixed(call.Slowdown(), 2),
                  TablePrinter::Fixed(inlined.Slowdown(), 2), TablePrinter::Percent(share, 1),
                  TablePrinter::Percent(eliminated, 1)});
  }
  table.Print();
  if (apps > 0) {
    std::printf("\nAverage procedure-call share of overhead: %.1f%%. The paper reports the\n"
                "call at 6.7%% of overhead on average — our modelled call is a larger share\n"
                "because the Alpha-era analysis body was costlier relative to the call.\n",
                100.0 * share_sum / apps);
  }
  return 0;
}
