// Reproduces Figure 4 ("Slowdown Factor versus Number of Processors"):
// slowdown for each application at 2, 4, and 8 processors. The paper's
// seemingly anomalous shape — slowdown DECREASES with more processors —
// comes from (i) interval/bitmap comparison being serialized at the master
// (observable overhead constant in p) while (ii) instrumentation costs run
// in parallel with the shared accesses, so per-process instrumentation
// overhead shrinks as work spreads.
//
// Besides the printed table (lazy protocol, the paper's prototype), every
// (app, protocol, procs) cell is appended to BENCH_fig4.json so plots and CI
// trend checks can consume the numbers without scraping stdout.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace cvm;
  std::printf("=== Figure 4: Slowdown Factor vs Number of Processors ===\n");

  const int procs[] = {2, 4, 8};
  struct ProtocolConfig {
    const char* name;
    ProtocolKind kind;
    int repeats;  // The printed lazy table keeps the paper's 5-run median.
    bool printed; // Feeds the stdout table (the paper's lazy prototype).
  };
  const ProtocolConfig protocols[] = {
      {"lazy", ProtocolKind::kSingleWriterLrc, 5, true},
      {"multi", ProtocolKind::kMultiWriterHomeLrc, 3, false},
      {"eager", ProtocolKind::kEagerRcInvalidate, 3, false},
  };

  std::vector<bench::Fig4Row> json_rows;
  TablePrinter table({"App", "2 procs", "4 procs", "8 procs", "Monotone decreasing?"});
  for (const bench::NamedApp& app : bench::PaperApps()) {
    std::vector<std::string> row = {app.name};
    std::vector<double> slowdowns;
    for (const ProtocolConfig& protocol : protocols) {
      for (int p : procs) {
        DsmOptions options = bench::PaperOptions(p);
        options.protocol = protocol.kind;
        WorkloadResult result = RunWorkloadMedian(app.factory, options, protocol.repeats);
        json_rows.push_back(bench::MakeFig4Row(app.name, protocol.name, p, result));
        if (protocol.printed) {
          slowdowns.push_back(result.Slowdown());
          row.push_back(TablePrinter::Fixed(result.Slowdown(), 2));
        }
      }
    }
    // Noise tolerance: treat within 10% as "not increasing".
    const bool decreasing =
        slowdowns[1] <= slowdowns[0] * 1.10 && slowdowns[2] <= slowdowns[1] * 1.10;
    row.push_back(decreasing ? "yes" : "no");
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nPaper: slowdown decreases toward ~2x at 8 processors for every app\n"
              "(instrumentation parallelizes; master-side comparison stays constant).\n");

  const char* json_path = "BENCH_fig4.json";
  if (!bench::WriteFig4Json(json_path, json_rows)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %zu (app, protocol, procs) rows to %s\n", json_rows.size(), json_path);
  return 0;
}
