// Reproduces Figure 4 ("Slowdown Factor versus Number of Processors"):
// slowdown for each application at 2, 4, and 8 processors. The paper's
// seemingly anomalous shape — slowdown DECREASES with more processors —
// comes from (i) interval/bitmap comparison being serialized at the master
// (observable overhead constant in p) while (ii) instrumentation costs run
// in parallel with the shared accesses, so per-process instrumentation
// overhead shrinks as work spreads.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace cvm;
  std::printf("=== Figure 4: Slowdown Factor vs Number of Processors ===\n");

  const int procs[] = {2, 4, 8};
  TablePrinter table({"App", "2 procs", "4 procs", "8 procs", "Monotone decreasing?"});
  for (const bench::NamedApp& app : bench::PaperApps()) {
    std::vector<std::string> row = {app.name};
    std::vector<double> slowdowns;
    for (int p : procs) {
      WorkloadResult result = RunWorkloadMedian(app.factory, bench::PaperOptions(p), 5);
      slowdowns.push_back(result.Slowdown());
      row.push_back(TablePrinter::Fixed(result.Slowdown(), 2));
    }
    // Noise tolerance: treat within 10% as "not increasing".
    const bool decreasing =
        slowdowns[1] <= slowdowns[0] * 1.10 && slowdowns[2] <= slowdowns[1] * 1.10;
    row.push_back(decreasing ? "yes" : "no");
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nPaper: slowdown decreases toward ~2x at 8 processors for every app\n"
              "(instrumentation parallelizes; master-side comparison stays constant).\n");
  return 0;
}
