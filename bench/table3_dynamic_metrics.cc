// Reproduces Table 3 ("Dynamic Metrics"): the fraction of intervals involved
// in concurrent overlapping pairs, the fraction of recorded bitmaps actually
// fetched for comparison, the bandwidth overhead of read notices on
// synchronization messages, and the instrumented access rates split into
// shared and private.
//
// Paper values for reference:
//         IntUsed Bitmaps MsgOhead  Shared/s  Private/s
//   FFT     15%     1%     0.4%      311079    924226
//   SOR      0%     0%     1.6%      483310    251200
//   TSP     93%    13%     1.3%      737159   2195510
//   Water   13%    11%    48.3%      145095    982965
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace cvm;
  std::printf("=== Table 3: Dynamic Metrics (8 processors) ===\n");

  TablePrinter table({"App", "Intervals Used", "Bitmaps Used", "Msg Ohead (all)",
                      "Msg Ohead (sync)", "Shared Acc/s", "Private Acc/s"});
  for (const bench::NamedApp& app : bench::PaperApps()) {
    WorkloadResult result = RunWorkloadMedian(app.factory, bench::PaperOptions(8), 3);
    table.AddRow({result.app_name, TablePrinter::Percent(result.IntervalsUsed(), 0),
                  TablePrinter::Percent(result.BitmapsUsed(), 0),
                  TablePrinter::Percent(result.MsgOverhead(), 1),
                  TablePrinter::Percent(result.MsgOverheadSyncOnly(), 1),
                  TablePrinter::WithThousands(static_cast<uint64_t>(result.SharedPerSecond())),
                  TablePrinter::WithThousands(static_cast<uint64_t>(result.PrivatePerSecond()))});
  }
  table.Print();
  std::printf(
      "\nPaper shapes: SOR exhibits zero unsynchronized sharing; TSP's intervals are\n"
      "almost all involved in concurrent overlapping pairs (93%%) yet only 13%% of\n"
      "bitmaps are fetched; Water's fine-grained synchronization makes read notices\n"
      "dominate synchronization bandwidth (48%%); private instrumented accesses\n"
      "outnumber shared ones for all but SOR.\n");
  return 0;
}
