// Ablation for §7: the paper's online scheme vs the Adve et al. post-mortem
// trace-log baseline. Both find the same races; the comparison is (i) trace
// storage, which grows with the run for the post-mortem scheme while the
// online system's retained state stays bounded by one barrier epoch, and
// (ii) where the analysis work happens.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace cvm;
  std::printf("=== Ablation (§7): online detection vs post-mortem trace analysis ===\n");

  TablePrinter table({"App", "Races online", "Races post-mortem", "Match", "Trace bytes",
                      "Trace records", "Trace bitmaps"});
  for (const bench::NamedApp& named : bench::PaperApps()) {
    DsmOptions options = bench::PaperOptions(8);
    options.postmortem_trace = true;  // Online stays on: same run, two analyses.

    std::unique_ptr<ParallelApp> app = named.factory();
    DsmSystem system(options);
    app->Setup(system);
    RunResult online = system.Run([&app](NodeContext& ctx) { app->Run(ctx); });

    const auto offline = system.trace().Analyze(system.segment().num_pages());

    bool match = online.races.size() == offline.races.size();
    for (const RaceReport& race : online.races) {
      bool found = false;
      for (const RaceReport& other : offline.races) {
        if (other.SameRace(race)) {
          found = true;
          break;
        }
      }
      match = match && found;
    }

    table.AddRow({app->name(), std::to_string(online.races.size()),
                  std::to_string(offline.races.size()), match ? "yes" : "NO",
                  TablePrinter::WithThousands(system.trace().TraceBytes()),
                  TablePrinter::WithThousands(system.trace().NumRecords()),
                  TablePrinter::WithThousands(system.trace().NumBitmapPairs())});
  }
  table.Print();
  std::printf("\nThe online system discards each epoch's interval records and bitmaps as\n"
              "soon as they are checked; the post-mortem scheme must keep all of the\n"
              "above until the run ends (§7: \"do away with trace logs, post-mortem\n"
              "analysis, and much of the overhead\").\n");
  return 0;
}
