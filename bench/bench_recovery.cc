// Crash-recovery bench (docs/FAULTS.md "Crash faults & recovery",
// docs/SERVICE.md): what does surviving node crashes cost the always-on
// service? Plays the same multi-tenant mix through a warm DsmService twice —
// clean (no faults) and crash_reboot (every workload's run crashes a
// seed-chosen node at barrier epoch 1 and reboots on retry) — and reports
// throughput, completion latency, retries, and fabric rebuilds per mode.
// Every workload must complete verified in both modes: the crash mode pays
// for the torn first attempt, the quarantine rebuild, and the backoff, but
// never loses work.
//
// Writes BENCH_recovery.json (validated by tools/check_bench_json.py, which
// asserts every crash-mode workload was retried and that recovery costs
// strictly more wall time than the clean run) and prints a table.
//
// Usage: bench_recovery [--smoke]
//   --smoke   smaller inputs and fewer repetitions for CI
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/fault/fault.h"
#include "src/obs/metrics.h"
#include "src/svc/service.h"

namespace {

using namespace cvm;

constexpr int kWorkers = 1;  // Serialized: latencies compare recovery cost, not host load.
constexpr int kNodes = 4;

struct ModeResult {
  std::string mode;  // "clean" | "crash_reboot"
  uint64_t requests = 0;
  uint64_t completed = 0;
  uint64_t retried = 0;
  uint64_t failed = 0;
  uint64_t fabric_rebuilds = 0;
  double total_wall_s = 0;
  double p50_s = 0;
  double mean_s = 0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

ModeResult RunMode(bool crash, int reps, bool smoke) {
  svc::ServiceConfig config;
  config.workers = kWorkers;
  config.nodes = kNodes;
  config.warm = true;  // Warm service: the crash mode's rebuilds are pure cost.
  config.max_shared_bytes = 64ull << 20;
  config.queue_capacity = 256;
  config.per_tenant_cap = 4;
  config.retry_budget = 2;
  config.retry_backoff_base_s = 0.0005;
  config.retry_backoff_cap_s = 0.005;

  struct MixEntry {
    const char* app;
    int64_t size;
  };
  const std::vector<MixEntry> mix = smoke
      ? std::vector<MixEntry>{{"sor", 32}, {"water", 64}, {"fft", 32}}
      : std::vector<MixEntry>{{"sor", 128}, {"water", 125}, {"fft", 64}};
  const std::vector<std::string> tenants = {"alpha", "beta", "gamma"};

  ModeResult result;
  result.mode = crash ? "crash_reboot" : "clean";

  svc::DsmService service(config);
  service.Start();
  const auto start = std::chrono::steady_clock::now();
  uint64_t seed = 1;
  for (int rep = 0; rep < reps; ++rep) {
    for (const std::string& tenant : tenants) {
      for (const MixEntry& entry : mix) {
        svc::WorkloadRequest request;
        request.tenant = tenant;
        request.app = entry.app;
        request.size = entry.size;
        request.seed = seed++;  // Vary the crash victim across requests.
        if (crash) {
          request.fault_profile = fault::FaultProfile::kCrash;
          request.fault_crash_reboot = true;
        }
        std::string reason;
        if (service.Submit(request, &reason) == 0) {
          std::fprintf(stderr, "error: rejected %s/%s: %s\n", tenant.c_str(), entry.app,
                       reason.c_str());
          std::exit(1);
        }
        ++result.requests;
      }
    }
    service.Drain();  // Bounded queueing: latency measures recovery, not depth.
  }
  service.Stop();
  result.total_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::vector<double> latencies;
  for (const svc::WorkloadOutcome& outcome : service.outcomes()) {
    if (!outcome.verified || outcome.failed) {
      std::fprintf(stderr, "error: %s/%s did not recover to a verified run\n",
                   outcome.request.tenant.c_str(), outcome.request.app.c_str());
      std::exit(1);
    }
    ++result.completed;
    result.failed += outcome.failed ? 1 : 0;
    latencies.push_back(outcome.service_s);
    result.mean_s += outcome.service_s;
  }
  result.retried = service.scheduler().stats().retried;
  if constexpr (obs::kObsCompiledIn) {
    if (service.metrics() != nullptr) {
      result.fabric_rebuilds = service.metrics()->counter("svc.fabric.rebuilds")->value();
    }
  } else {
    result.fabric_rebuilds = result.retried;  // One quarantine per requeued crash.
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    result.p50_s = Percentile(latencies, 0.5);
    result.mean_s /= static_cast<double>(latencies.size());
  }
  return result;
}

bool WriteRecoveryJson(const std::string& path, const std::vector<ModeResult>& modes) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "[\n";
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "  {\"mode\": \"%s\", \"workers\": %d, \"nodes\": %d, \"requests\": %llu, "
                  "\"completed\": %llu, \"retried\": %llu, \"failed\": %llu, "
                  "\"fabric_rebuilds\": %llu, \"workloads_per_sec\": %.3f, "
                  "\"total_wall_s\": %.4f, \"p50_latency_s\": %.6f, "
                  "\"mean_latency_s\": %.6f}%s\n",
                  m.mode.c_str(), kWorkers, kNodes,
                  static_cast<unsigned long long>(m.requests),
                  static_cast<unsigned long long>(m.completed),
                  static_cast<unsigned long long>(m.retried),
                  static_cast<unsigned long long>(m.failed),
                  static_cast<unsigned long long>(m.fabric_rebuilds),
                  m.total_wall_s > 0 ? static_cast<double>(m.completed) / m.total_wall_s : 0.0,
                  m.total_wall_s, m.p50_s, m.mean_s,
                  i + 1 < modes.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_recovery [--smoke]\n");
      return 2;
    }
  }
  const int reps = smoke ? 2 : 4;
  std::printf(
      "crash recovery: 3 tenants x 3 apps x %d rep(s), clean vs crash+reboot, "
      "%d worker x %d nodes\n\n",
      reps, kWorkers, kNodes);

  std::vector<ModeResult> modes;
  modes.push_back(RunMode(/*crash=*/false, reps, smoke));
  modes.push_back(RunMode(/*crash=*/true, reps, smoke));

  TablePrinter table({"Mode", "Requests", "Done", "Retried", "Rebuilds", "Wl/s",
                      "p50 ms", "Mean ms"});
  for (const ModeResult& m : modes) {
    table.AddRow({m.mode, std::to_string(m.requests), std::to_string(m.completed),
                  std::to_string(m.retried), std::to_string(m.fabric_rebuilds),
                  TablePrinter::Fixed(m.total_wall_s > 0
                                          ? static_cast<double>(m.completed) / m.total_wall_s
                                          : 0.0, 2),
                  TablePrinter::Fixed(m.p50_s * 1e3, 2),
                  TablePrinter::Fixed(m.mean_s * 1e3, 2)});
  }
  table.Print();

  const double overhead = modes[0].total_wall_s > 0
      ? modes[1].total_wall_s / modes[0].total_wall_s
      : 0.0;
  std::printf("\nsurviving a crash on every workload costs %.2fx the clean wall time\n",
              overhead);

  if (!WriteRecoveryJson("BENCH_recovery.json", modes)) {
    std::fprintf(stderr, "error: cannot write BENCH_recovery.json\n");
    return 1;
  }
  std::printf("wrote BENCH_recovery.json\n");
  return 0;
}
