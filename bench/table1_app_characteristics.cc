// Reproduces Table 1 ("Application Characteristics"): input set,
// synchronization style, shared-memory size, intervals per barrier, and the
// 8-processor slowdown of race detection versus the unaltered system.
//
// Paper values for reference:
//   FFT   64x64x16        barrier       3088 KB   2    2.08
//   SOR   512x512         barrier       8208 KB   2    1.83
//   TSP   19 cities       lock           792 KB   177  2.51
//   Water 216 mols/5 it   lock,barrier   152 KB   46   2.31
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace cvm;
  std::printf("=== Table 1: Application Characteristics (8 processors) ===\n");

  TablePrinter table({"App", "Input Set", "Synchronization", "Memory Size (kbytes)",
                      "Intervals Per Barrier", "Slowdown (8 Proc)", "Races", "Verified"});

  for (const bench::NamedApp& app : bench::PaperApps()) {
    WorkloadResult result = RunWorkloadMedian(app.factory, bench::PaperOptions(8), 5);
    table.AddRow({result.app_name, result.input, result.sync,
                  TablePrinter::Fixed(result.MemoryKb(), 0),
                  TablePrinter::Fixed(result.IntervalsPerBarrier(8), 0),
                  TablePrinter::Fixed(result.Slowdown(), 2),
                  std::to_string(result.detect.races.size()),
                  result.verified ? "yes" : "NO"});
  }
  table.Print();
  std::printf("\nPaper: slowdowns 2.08 / 1.83 / 2.51 / 2.31 (avg 2.2); barrier-only apps\n"
              "show 2 intervals per barrier; lock apps far more.\n");
  return 0;
}
