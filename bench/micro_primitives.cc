// Micro-benchmarks of the primitives the paper's cost claims rest on: the
// constant-time vector-timestamp concurrency test (§4 step 2 — "two integer
// comparisons"), bitmap comparison ("constant time, dependent on page
// size"), diff creation/application, interval-log queries, and the §6.2
// page-overlap alternatives (pairwise lists vs dense page bitmaps).
#include <benchmark/benchmark.h>

#include "src/common/bitmap.h"
#include "src/common/rng.h"
#include "src/mem/diff.h"
#include "src/race/detector.h"

namespace cvm {
namespace {

void BM_VectorClockConcurrencyTest(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  VectorClock a(nodes);
  VectorClock b(nodes);
  a.Set(0, 10);
  b.Set(1, 12);
  const IntervalId ia{0, 10};
  const IntervalId ib{1, 12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalsConcurrent(ia, a, ib, b));
  }
}
BENCHMARK(BM_VectorClockConcurrencyTest)->Arg(2)->Arg(8)->Arg(32);

void BM_BitmapCompare(benchmark::State& state) {
  const uint32_t words = static_cast<uint32_t>(state.range(0));
  Bitmap a(words);
  Bitmap b(words);
  Rng rng(1);
  for (uint32_t i = 0; i < words / 16; ++i) {
    a.Set(static_cast<uint32_t>(rng.Below(words)));
    b.Set(static_cast<uint32_t>(rng.Below(words)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
  state.SetLabel(std::to_string(words * 4) + "B page");
}
BENCHMARK(BM_BitmapCompare)->Arg(256)->Arg(1024)->Arg(2048);  // 1K/4K/8K pages.

void BM_DiffCreate(benchmark::State& state) {
  const size_t page = 4096;
  std::vector<uint8_t> twin(page, 0);
  std::vector<uint8_t> current(page, 0);
  Rng rng(2);
  for (int i = 0; i < state.range(0); ++i) {
    current[rng.Below(page)] = static_cast<uint8_t>(1 + rng.Below(255));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeDiff(0, IntervalId{0, 0}, twin, current));
  }
}
BENCHMARK(BM_DiffCreate)->Arg(0)->Arg(16)->Arg(256);

void BM_DiffApply(benchmark::State& state) {
  const size_t page = 4096;
  std::vector<uint8_t> twin(page, 0);
  std::vector<uint8_t> current(page, 0);
  Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) {
    current[rng.Below(page)] = static_cast<uint8_t>(1 + rng.Below(255));
  }
  const Diff diff = MakeDiff(0, IntervalId{0, 0}, twin, current);
  std::vector<uint8_t> frame(page, 0);
  for (auto _ : state) {
    ApplyDiff(diff, frame);
    benchmark::DoNotOptimize(frame.data());
  }
}
BENCHMARK(BM_DiffApply)->Arg(16)->Arg(256);

// §6.2: page-set overlap via short sorted lists is O(n^2) in list length but
// wins for the typical "fewer than ten pages"; dense page bitmaps are linear
// in the number of pages in the system and win for long lists.
void RunOverlapBench(benchmark::State& state, OverlapMethod method) {
  const int list_len = static_cast<int>(state.range(0));
  const int num_pages = 4096;
  Rng rng(4);
  std::vector<IntervalRecord> records;
  for (int n = 0; n < 2; ++n) {
    IntervalRecord r;
    r.id = IntervalId{n, 0};
    r.vc = VectorClock(2);
    r.vc.Set(n, 0);
    for (int i = 0; i < list_len; ++i) {
      r.write_pages.push_back(static_cast<PageId>(rng.Below(num_pages)));
      r.read_pages.push_back(static_cast<PageId>(rng.Below(num_pages)));
    }
    records.push_back(std::move(r));
  }
  for (auto _ : state) {
    RaceDetector detector(num_pages, method);
    benchmark::DoNotOptimize(detector.BuildCheckList(records));
  }
}
void BM_OverlapPageLists(benchmark::State& state) {
  RunOverlapBench(state, OverlapMethod::kPageLists);
}
void BM_OverlapPageBitmaps(benchmark::State& state) {
  RunOverlapBench(state, OverlapMethod::kPageBitmaps);
}
BENCHMARK(BM_OverlapPageLists)->Arg(4)->Arg(10)->Arg(64)->Arg(512);
BENCHMARK(BM_OverlapPageBitmaps)->Arg(4)->Arg(10)->Arg(64)->Arg(512);

void BM_IntervalLogUnseen(benchmark::State& state) {
  const int nodes = 8;
  IntervalLog log(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    for (IntervalIndex i = 0; i < state.range(0); ++i) {
      IntervalRecord r;
      r.id = IntervalId{n, i};
      r.vc = VectorClock(nodes);
      r.vc.Set(n, i);
      r.write_pages = {static_cast<PageId>(i % 16)};
      log.Insert(r);
    }
  }
  VectorClock vc(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    vc.Set(n, static_cast<IntervalIndex>(state.range(0) / 2));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.UnseenBy(vc));
  }
}
BENCHMARK(BM_IntervalLogUnseen)->Arg(16)->Arg(177);  // TSP's intervals/barrier.

}  // namespace
}  // namespace cvm

BENCHMARK_MAIN();
