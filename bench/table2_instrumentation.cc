// Reproduces Table 2 ("Instrumentation Statistics"): the static
// classification of every load/store in each application binary into the
// categories ATOM can eliminate (stack, statically-allocated, shared
// library, CVM) and the remainder that must be instrumented.
//
// Paper values for reference:
//   FFT   1285 / 1496 / 124716 / 3910 / 261
//   SOR    342 / 1304 /  48717 / 3910 / 126
//   TSP    244 / 1213 /  48717 / 3910 / 350
//   Water  649 / 1919 / 124716 / 3910 / 528
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/instr/binary_image.h"

int main() {
  using namespace cvm;
  std::printf("=== Table 2: Instrumentation Statistics ===\n");

  TablePrinter table(
      {"App", "Stack", "Static", "Library", "CVM", "Inst.", "Eliminated"});
  for (const bench::NamedApp& named : bench::PaperApps()) {
    std::unique_ptr<ParallelApp> app = named.factory();
    const BinaryImage image = SynthesizeBinary(app->name(), app->instruction_mix(), 1996);
    const ClassifyResult result = StaticClassifier().Classify(image);
    table.AddRow({app->name(), std::to_string(result.stack), std::to_string(result.static_data),
                  std::to_string(result.library), std::to_string(result.cvm),
                  std::to_string(result.instrumented),
                  TablePrinter::Percent(result.EliminatedFraction(), 2)});
  }
  table.Print();

  std::printf("\n--- §6.5 extension: inter-procedural def-use analysis ---\n");
  TablePrinter extension({"App", "Inst. (basic-block)", "Inst. (inter-procedural)", "Reduction"});
  for (const bench::NamedApp& named : bench::PaperApps()) {
    std::unique_ptr<ParallelApp> app = named.factory();
    InstructionMix mix = app->instruction_mix();
    // The intra-block analysis resolves nothing extra in these binaries;
    // model the inter-procedural pass resolving its calibrated fraction of
    // the remaining "false" candidates.
    const BinaryImage image = SynthesizeBinary(app->name(), mix, 1996);
    const ClassifyResult basic = StaticClassifier(false).Classify(image);
    const ClassifyResult inter = StaticClassifier(true).Classify(image);
    extension.AddRow({app->name(), std::to_string(basic.instrumented),
                      std::to_string(inter.instrumented),
                      TablePrinter::Percent(
                          1.0 - static_cast<double>(inter.instrumented) /
                                    static_cast<double>(basic.instrumented),
                          1)});
  }
  extension.Print();
  std::printf("\nPaper: over 99%% of all loads and stores are statically eliminated (§5.1);\n"
              "inter-procedural analysis would remove many of the remaining \"false\"\n"
              "instrumentations (§6.5).\n");
  return 0;
}
