// Hot-path kernel bench: wall-clocks the active word/SIMD kernels
// (src/perf/) against their noinline scalar references on the shapes the
// detector and coherence layers actually run — per-page access-bitmap
// compares (§4 step 5), racing-word extraction, set-bit enumeration (codec
// encode), and twin-vs-page diff construction (§6.5).
//
// Every cell verifies the two faces are bit-identical on the bench inputs
// before timing them; "identical_output" in the JSON is that check. CI
// asserts (via tools/check_bench_json.py) that the compare and diff kernels
// beat the scalar baseline and that every cell is bit-identical.
//
// Writes BENCH_hotpath.json and prints a human-readable table.
//
// Usage: bench_hotpath [--smoke]
//   --smoke   fewer timing repetitions for CI (seconds, not tens of seconds)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/perf/kernels.h"

namespace {

using namespace cvm;

// Defeats dead-code elimination without perturbing the timed loop: each
// timed pass folds its results into a local accumulator that lands here.
volatile uint64_t g_sink = 0;

struct Cell {
  std::string kernel;
  uint64_t bytes_per_op = 0;  // Input bytes one kernel call touches.
  double scalar_ns = 0;       // Per call, min across repetitions.
  double active_ns = 0;
  bool identical_output = false;
};

// Min-of-reps wall clock for one face of a kernel: `body` runs the kernel
// over the whole working set once; the per-call time divides by `calls`.
template <typename Body>
double TimeFace(int reps, int iters, uint64_t calls, Body&& body) {
  double best_ns = 0;
  for (int rep = 0; rep < reps; ++rep) {
    uint64_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) {
      sink += body();
    }
    const double ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start)
            .count();
    g_sink = g_sink + sink;
    const double per_call = ns / (static_cast<double>(iters) * static_cast<double>(calls));
    if (rep == 0 || per_call < best_ns) {
      best_ns = per_call;
    }
  }
  return best_ns;
}

// One page's access bitmap: 4K page / 4-byte words = 1024 bits = 16 words.
constexpr size_t kBitmapWords = 16;
constexpr size_t kPairs = 4096;  // Pairs per pass; ~1 MiB working set.

struct BitmapSet {
  std::vector<uint64_t> a;  // kPairs contiguous bitmaps.
  std::vector<uint64_t> b;
};

// Mostly-disjoint pairs (the common case: pages shared but not racing), so
// the compare kernel runs its full scan; a handful of racing pairs keep the
// early-exit path honest.
BitmapSet MakeBitmaps() {
  BitmapSet set;
  set.a.assign(kPairs * kBitmapWords, 0);
  set.b.assign(kPairs * kBitmapWords, 0);
  Rng rng(11);
  for (size_t p = 0; p < kPairs; ++p) {
    uint64_t* a = set.a.data() + p * kBitmapWords;
    uint64_t* b = set.b.data() + p * kBitmapWords;
    const size_t bits = kBitmapWords * 64;
    for (int i = 0; i < 48; ++i) {
      const size_t bit = rng.Below(bits / 2);  // a writes the low half...
      a[bit / 64] |= 1ull << (bit % 64);
    }
    for (int i = 0; i < 48; ++i) {
      const size_t bit = bits / 2 + rng.Below(bits / 2);  // ...b the high half.
      b[bit / 64] |= 1ull << (bit % 64);
    }
    if (p % 64 == 0) {  // A racing minority with genuine overlap.
      const size_t bit = rng.Below(bits);
      a[bit / 64] |= 1ull << (bit % 64);
      b[bit / 64] |= 1ull << (bit % 64);
    }
  }
  return set;
}

Cell BenchCompare(int reps, int iters, const BitmapSet& set) {
  Cell cell;
  cell.kernel = "compare";
  cell.bytes_per_op = 2 * kBitmapWords * sizeof(uint64_t);
  cell.identical_output = true;
  for (size_t p = 0; p < kPairs; ++p) {
    const uint64_t* a = set.a.data() + p * kBitmapWords;
    const uint64_t* b = set.b.data() + p * kBitmapWords;
    if (perf::AnyCommonBit(a, b, kBitmapWords) !=
        perf::scalar::AnyCommonBit(a, b, kBitmapWords)) {
      cell.identical_output = false;
    }
  }
  cell.active_ns = TimeFace(reps, iters, kPairs, [&set] {
    uint64_t hits = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      hits += perf::AnyCommonBit(set.a.data() + p * kBitmapWords,
                                 set.b.data() + p * kBitmapWords, kBitmapWords);
    }
    return hits;
  });
  cell.scalar_ns = TimeFace(reps, iters, kPairs, [&set] {
    uint64_t hits = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      hits += perf::scalar::AnyCommonBit(set.a.data() + p * kBitmapWords,
                                         set.b.data() + p * kBitmapWords, kBitmapWords);
    }
    return hits;
  });
  return cell;
}

Cell BenchIntersectBits(int reps, int iters, const BitmapSet& set) {
  Cell cell;
  cell.kernel = "intersect_bits";
  cell.bytes_per_op = 2 * kBitmapWords * sizeof(uint64_t);
  cell.identical_output = true;
  std::vector<uint32_t> active_out;
  std::vector<uint32_t> scalar_out;
  for (size_t p = 0; p < kPairs; ++p) {
    active_out.clear();
    scalar_out.clear();
    perf::AppendCommonBits(set.a.data() + p * kBitmapWords, set.b.data() + p * kBitmapWords,
                           kBitmapWords, &active_out);
    perf::scalar::AppendCommonBits(set.a.data() + p * kBitmapWords,
                                   set.b.data() + p * kBitmapWords, kBitmapWords, &scalar_out);
    if (active_out != scalar_out) {
      cell.identical_output = false;
    }
  }
  cell.active_ns = TimeFace(reps, iters, kPairs, [&set, &active_out] {
    uint64_t bits = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      active_out.clear();
      perf::AppendCommonBits(set.a.data() + p * kBitmapWords, set.b.data() + p * kBitmapWords,
                             kBitmapWords, &active_out);
      bits += active_out.size();
    }
    return bits;
  });
  cell.scalar_ns = TimeFace(reps, iters, kPairs, [&set, &scalar_out] {
    uint64_t bits = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      scalar_out.clear();
      perf::scalar::AppendCommonBits(set.a.data() + p * kBitmapWords,
                                     set.b.data() + p * kBitmapWords, kBitmapWords, &scalar_out);
      bits += scalar_out.size();
    }
    return bits;
  });
  return cell;
}

Cell BenchSetBits(int reps, int iters, const BitmapSet& set) {
  Cell cell;
  cell.kernel = "set_bits";
  cell.bytes_per_op = kBitmapWords * sizeof(uint64_t);
  cell.identical_output = true;
  std::vector<uint32_t> active_out;
  std::vector<uint32_t> scalar_out;
  for (size_t p = 0; p < kPairs; ++p) {
    active_out.clear();
    scalar_out.clear();
    perf::AppendSetBits(set.a.data() + p * kBitmapWords, kBitmapWords, &active_out);
    perf::scalar::AppendSetBits(set.a.data() + p * kBitmapWords, kBitmapWords, &scalar_out);
    if (active_out != scalar_out) {
      cell.identical_output = false;
    }
  }
  cell.active_ns = TimeFace(reps, iters, kPairs, [&set, &active_out] {
    uint64_t bits = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      active_out.clear();
      perf::AppendSetBits(set.a.data() + p * kBitmapWords, kBitmapWords, &active_out);
      bits += active_out.size();
    }
    return bits;
  });
  cell.scalar_ns = TimeFace(reps, iters, kPairs, [&set, &scalar_out] {
    uint64_t bits = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      scalar_out.clear();
      perf::scalar::AppendSetBits(set.a.data() + p * kBitmapWords, kBitmapWords, &scalar_out);
      bits += scalar_out.size();
    }
    return bits;
  });
  return cell;
}

constexpr size_t kPageBytes = 4096;
constexpr size_t kDiffPages = 256;

struct DiffSet {
  std::vector<uint8_t> twins;    // kDiffPages contiguous pages.
  std::vector<uint8_t> currents;
};

// Sparse modifications — SOR/Water touch a few dozen words per page per
// interval — so the compare is a full scan that finds little, the exact
// shape MakeDiff runs at every flush.
DiffSet MakeDiffPages() {
  DiffSet set;
  set.twins.assign(kDiffPages * kPageBytes, 0);
  Rng rng(13);
  for (size_t i = 0; i < set.twins.size(); ++i) {
    set.twins[i] = static_cast<uint8_t>(rng.Below(256));
  }
  set.currents = set.twins;
  for (size_t p = 0; p < kDiffPages; ++p) {
    uint8_t* page = set.currents.data() + p * kPageBytes;
    for (int i = 0; i < 32; ++i) {
      const size_t word = rng.Below(kPageBytes / 4);
      page[word * 4] ^= 0x5a;
    }
  }
  return set;
}

Cell BenchDiffMake(int reps, int iters, const DiffSet& set) {
  Cell cell;
  cell.kernel = "diff_make";
  cell.bytes_per_op = 2 * kPageBytes;
  cell.identical_output = true;
  std::vector<uint32_t> active_out;
  std::vector<uint32_t> scalar_out;
  for (size_t p = 0; p < kDiffPages; ++p) {
    active_out.clear();
    scalar_out.clear();
    perf::AppendUnequalWords32(set.twins.data() + p * kPageBytes,
                               set.currents.data() + p * kPageBytes, kPageBytes / 4,
                               &active_out);
    perf::scalar::AppendUnequalWords32(set.twins.data() + p * kPageBytes,
                                       set.currents.data() + p * kPageBytes, kPageBytes / 4,
                                       &scalar_out);
    if (active_out != scalar_out) {
      cell.identical_output = false;
    }
  }
  cell.active_ns = TimeFace(reps, iters, kDiffPages, [&set, &active_out] {
    uint64_t words = 0;
    for (size_t p = 0; p < kDiffPages; ++p) {
      active_out.clear();
      perf::AppendUnequalWords32(set.twins.data() + p * kPageBytes,
                                 set.currents.data() + p * kPageBytes, kPageBytes / 4,
                                 &active_out);
      words += active_out.size();
    }
    return words;
  });
  cell.scalar_ns = TimeFace(reps, iters, kDiffPages, [&set, &scalar_out] {
    uint64_t words = 0;
    for (size_t p = 0; p < kDiffPages; ++p) {
      scalar_out.clear();
      perf::scalar::AppendUnequalWords32(set.twins.data() + p * kPageBytes,
                                         set.currents.data() + p * kPageBytes, kPageBytes / 4,
                                         &scalar_out);
      words += scalar_out.size();
    }
    return words;
  });
  return cell;
}

bool WriteHotpathJson(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "[\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "  {\"kernel\": \"%s\", \"target\": \"%s\", \"bytes_per_op\": %llu, "
                  "\"scalar_ns\": %.3f, \"active_ns\": %.3f, \"speedup\": %.3f, "
                  "\"identical_output\": %s}%s\n",
                  cell.kernel.c_str(), perf::KernelTargetName(),
                  static_cast<unsigned long long>(cell.bytes_per_op), cell.scalar_ns,
                  cell.active_ns, cell.active_ns > 0 ? cell.scalar_ns / cell.active_ns : 0.0,
                  cell.identical_output ? "true" : "false",
                  i + 1 < cells.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_hotpath [--smoke]\n");
      return 2;
    }
  }
  const int reps = smoke ? 5 : 9;
  const int iters = smoke ? 40 : 200;
  std::printf("hot-path kernels, target=%s, min of %d rep(s) x %d passes\n\n",
              perf::KernelTargetName(), reps, iters);

  const BitmapSet bitmaps = MakeBitmaps();
  const DiffSet diffs = MakeDiffPages();
  std::vector<Cell> cells;
  cells.push_back(BenchCompare(reps, iters, bitmaps));
  cells.push_back(BenchIntersectBits(reps, iters, bitmaps));
  cells.push_back(BenchSetBits(reps, iters, bitmaps));
  cells.push_back(BenchDiffMake(reps, iters, diffs));

  TablePrinter table({"Kernel", "Bytes/op", "Scalar ns", "Active ns", "Speedup", "Bit-exact"});
  for (const Cell& cell : cells) {
    table.AddRow({cell.kernel, TablePrinter::WithThousands(cell.bytes_per_op),
                  TablePrinter::Fixed(cell.scalar_ns, 1), TablePrinter::Fixed(cell.active_ns, 1),
                  cell.active_ns > 0 ? TablePrinter::Fixed(cell.scalar_ns / cell.active_ns, 2) + "x"
                                     : "-",
                  cell.identical_output ? "yes" : "NO"});
  }
  table.Print();

  bool ok = true;
  for (const Cell& cell : cells) {
    if (!cell.identical_output) {
      std::fprintf(stderr, "error: kernel %s diverged from its scalar reference\n",
                   cell.kernel.c_str());
      ok = false;
    }
  }
  if (!WriteHotpathJson("BENCH_hotpath.json", cells)) {
    std::fprintf(stderr, "error: cannot write BENCH_hotpath.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_hotpath.json (sink %llu)\n",
              static_cast<unsigned long long>(g_sink != 0));
  return ok ? 0 : 1;
}
