// Tracing overhead bench (Figure-3 style, but for the observability layer
// itself): runs FFT on 8 nodes three ways — tracing off, plain tracing, and
// tracing with causal flow events — and reports the wall-clock overhead each
// layer adds. Flow tracing stamps a TraceContext on every DSM message and
// emits two extra events per message, so this is the bench that keeps its
// cost honest: CI asserts wall_s(trace+flows) <= 2 x wall_s(trace).
//
// Writes BENCH_obs.json (validated by tools/check_bench_json.py) and prints
// a human-readable table.
//
// Usage: bench_obs_overhead [--smoke]
//   --smoke   small FFT input for CI (seconds, not minutes)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/fft.h"
#include "src/common/table.h"
#include "src/dsm/dsm.h"
#include "src/obs/tracer.h"

namespace {

using namespace cvm;

struct ModeResult {
  std::string mode;
  double wall_s = 0;          // Best of the repetitions.
  double sim_ms = 0;
  uint64_t trace_events = 0;  // Events accepted into rings.
  uint64_t flow_events = 0;   // The s/t/f subset.
};

constexpr int kNodes = 8;
constexpr int kReps = 3;

ModeResult RunMode(const std::string& mode, int fft_rows) {
  DsmOptions options = bench::PaperOptions(kNodes);
  options.trace.trace_enabled = mode != "off";
  options.trace.flow_events = mode == "trace+flows";
  // Rings must hold a full epoch of an 8-node FFT without overwriting,
  // otherwise the drop path distorts the comparison between modes.
  options.trace.ring_capacity = 1u << 18;

  ModeResult result;
  result.mode = mode;
  for (int rep = 0; rep < kReps; ++rep) {
    FftApp::Params params;
    params.rows = fft_rows;
    params.cols = fft_rows;
    auto app = std::make_unique<FftApp>(params);
    DsmSystem system(options);
    app->Setup(system);
    const auto start = std::chrono::steady_clock::now();
    RunResult run = system.Run([&app](NodeContext& ctx) { app->Run(ctx); });
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (!app->Verify()) {
      std::fprintf(stderr, "error: FFT result failed verification in mode %s\n", mode.c_str());
      std::exit(1);
    }
    // Min across reps: the least-interfered-with run is the honest cost of
    // the work itself; anything above it is host noise.
    if (rep == 0 || wall_s < result.wall_s) {
      result.wall_s = wall_s;
    }
    result.sim_ms = run.sim_time_ns / 1e6;
    if (system.tracer() != nullptr) {
      result.trace_events = system.tracer()->TotalEmitted();
      uint64_t flow = 0;
      for (const obs::TraceEvent& e : system.tracer()->Collected()) {
        if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
          ++flow;
        }
      }
      result.flow_events = flow;
    }
  }
  return result;
}

bool WriteObsJson(const std::string& path, const std::vector<ModeResult>& modes,
                  double off_wall_s, double trace_wall_s) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "[\n";
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "  {\"app\": \"FFT\", \"procs\": %d, \"mode\": \"%s\", \"wall_s\": %.4f, "
                  "\"sim_ms\": %.3f, \"trace_events\": %llu, \"flow_events\": %llu, "
                  "\"overhead_vs_off\": %.4f, \"overhead_vs_trace\": %.4f}%s\n",
                  kNodes, m.mode.c_str(), m.wall_s, m.sim_ms,
                  static_cast<unsigned long long>(m.trace_events),
                  static_cast<unsigned long long>(m.flow_events),
                  off_wall_s > 0 ? m.wall_s / off_wall_s : 0.0,
                  trace_wall_s > 0 ? m.wall_s / trace_wall_s : 0.0,
                  i + 1 < modes.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_obs_overhead [--smoke]\n");
      return 2;
    }
  }
  const int fft_rows = smoke ? 64 : 128;
  std::printf("observability overhead: FFT %dx%d on %d nodes, best of %d rep(s)\n\n", fft_rows,
              fft_rows, kNodes, kReps);

  std::vector<ModeResult> modes;
  for (const char* mode : {"off", "trace", "trace+flows"}) {
    modes.push_back(RunMode(mode, fft_rows));
  }
  const double off_wall_s = modes[0].wall_s;
  const double trace_wall_s = modes[1].wall_s;

  TablePrinter table({"Mode", "Wall s", "vs off", "vs trace", "Events", "Flow events"});
  for (const ModeResult& m : modes) {
    table.AddRow({m.mode, TablePrinter::Fixed(m.wall_s, 3),
                  off_wall_s > 0 ? TablePrinter::Fixed(m.wall_s / off_wall_s, 2) + "x" : "-",
                  trace_wall_s > 0 ? TablePrinter::Fixed(m.wall_s / trace_wall_s, 2) + "x" : "-",
                  TablePrinter::WithThousands(m.trace_events),
                  TablePrinter::WithThousands(m.flow_events)});
  }
  table.Print();

  if (!WriteObsJson("BENCH_obs.json", modes, off_wall_s, trace_wall_s)) {
    std::fprintf(stderr, "error: cannot write BENCH_obs.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_obs.json\n");
  return 0;
}
