// Cluster-scaling bench for the hierarchical barrier + epoch-batched
// detection path (docs/ARCHITECTURE.md "Combine-tree barrier"): sweeps the
// node count over {8, 64, 256, 1024} and, at every size, runs the same
// deterministic neighbor-halo workload three ways —
//
//   flat   the legacy single-master barrier and per-epoch detection,
//   tree   --barrier-tree with fanout 8 (in-tree check-list aggregation),
//   tree+  tree plus --detect-batch=2 and --intern-bitmaps.
//
// The workload gives every node one page: each epoch it writes the head of
// its own page and word kRaceWord of its right neighbor's page (a W/W race
// with the neighbor's own write, one racing word per page per epoch), then
// reads an untouched word of that page (a false-sharing check pair). Race
// population is exact and size-independent in structure: 3 epochs x nodes
// W/W reports.
//
// Asserts, and exits nonzero otherwise:
//   - every mode reports the identical race list at every size,
//   - detect time and wire bytes per epoch grow sub-quadratically in the
//     node count along the tree curve (log-log slope < 2 between
//     consecutive sizes).
//
// Writes BENCH_scaling.json (validated by tools/check_bench_json.py) and
// prints a human-readable table.
//
// Usage: bench_scaling [--smoke]
//   --smoke   sweep {8, 64} only, for CI
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace {

using namespace cvm;

constexpr uint64_t kPageSize = 512;
constexpr int kWordsPerPage = static_cast<int>(kPageSize / sizeof(int32_t));
constexpr int kOwnWrites = 4;      // Words 0..3 of the node's own page.
constexpr int kRaceWord = 2;       // Neighbor writes it too -> W/W race.
constexpr int kStaleWord = 9;      // Read-only word -> false-sharing pair.
constexpr int kExplicitBarriers = 2;  // Plus the implicit final barrier.
constexpr int kTreeFanout = 8;

struct ModeResult {
  std::string mode;
  double detect_ns_per_epoch = 0;
  double wire_bytes_per_epoch = 0;
  double sim_ms = 0;
  double wall_s = 0;
  uint64_t races = 0;
  uint64_t intern_hits = 0;
  // Compact identity of the full report list, order-sensitive.
  std::vector<std::string> signature;
};

ModeResult RunOne(int nodes, const std::string& mode) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = kPageSize;
  options.max_shared_bytes = static_cast<uint64_t>(nodes) * kPageSize + (1 << 20);
  if (mode != "flat") {
    options.barrier_tree = true;
    options.barrier_fanout = kTreeFanout;
  }
  if (mode == "tree+batch") {
    options.detect_batch = 2;
    options.intern_bitmaps = true;
  }

  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "halo",
                                          static_cast<size_t>(nodes) * kWordsPerPage);

  const auto wall_start = std::chrono::steady_clock::now();
  RunResult result = system.Run([&](NodeContext& ctx) {
    const int id = ctx.id();
    const int neighbor = (id + 1) % ctx.num_nodes();
    const size_t own = static_cast<size_t>(id) * kWordsPerPage;
    const size_t next = static_cast<size_t>(neighbor) * kWordsPerPage;
    for (int epoch = 0; epoch <= kExplicitBarriers; ++epoch) {
      for (int w = 0; w < kOwnWrites; ++w) {
        data.Set(ctx, own + w, id * 100 + epoch * 10 + w);
      }
      data.Set(ctx, next + kRaceWord, id);          // Unsynchronized: the race.
      (void)data.Get(ctx, next + kStaleWord);       // Concurrent read, no race.
      if (epoch < kExplicitBarriers) {
        ctx.Barrier();
      }
      // The run's implicit final barrier checks the last epoch.
    }
  });

  ModeResult out;
  out.mode = mode;
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  const uint64_t epochs = std::max<uint64_t>(1, result.barriers);
  out.detect_ns_per_epoch = result.pipeline.detect_ns / static_cast<double>(epochs);
  out.wire_bytes_per_epoch =
      static_cast<double>(result.net.bytes) / static_cast<double>(epochs);
  out.sim_ms = result.sim_time_ns / 1e6;
  out.races = result.races.size();
  out.intern_hits = result.intern.hits;
  out.signature.reserve(result.races.size());
  for (const RaceReport& race : result.races) {
    char sig[128];
    std::snprintf(sig, sizeof(sig), "%d:%d:%u:%d.%d:%d.%d:%d",
                  static_cast<int>(race.kind), race.page, race.word,
                  race.interval_a.node, race.interval_a.index, race.interval_b.node,
                  race.interval_b.index, race.epoch);
    out.signature.push_back(sig);
  }
  return out;
}

struct SizeRow {
  int nodes = 0;
  ModeResult flat;
  ModeResult tree;
  ModeResult batch;
  bool reports_match = false;
};

bool WriteScalingJson(const std::string& path, const std::vector<SizeRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SizeRow& r = rows[i];
    char buffer[640];
    std::snprintf(buffer, sizeof(buffer),
                  "  {\"nodes\": %d, \"races\": %llu, \"reports_match\": %s,\n"
                  "   \"flat_detect_ns_per_epoch\": %.1f, \"tree_detect_ns_per_epoch\": %.1f,\n"
                  "   \"batch_detect_ns_per_epoch\": %.1f,\n"
                  "   \"flat_wire_bytes_per_epoch\": %.1f, \"tree_wire_bytes_per_epoch\": %.1f,\n"
                  "   \"batch_wire_bytes_per_epoch\": %.1f, \"intern_hits\": %llu}%s\n",
                  r.nodes, static_cast<unsigned long long>(r.flat.races),
                  r.reports_match ? "true" : "false", r.flat.detect_ns_per_epoch,
                  r.tree.detect_ns_per_epoch, r.batch.detect_ns_per_epoch,
                  r.flat.wire_bytes_per_epoch, r.tree.wire_bytes_per_epoch,
                  r.batch.wire_bytes_per_epoch,
                  static_cast<unsigned long long>(r.batch.intern_hits),
                  i + 1 < rows.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
  return static_cast<bool>(out);
}

// log-log slope of metric between consecutive sweep sizes; the acceptance
// bar is < 2 (sub-quadratic) for the tree curves.
double Exponent(double small_value, double big_value, int small_n, int big_n) {
  if (small_value <= 0 || big_value <= 0) {
    return 0;
  }
  return std::log(big_value / small_value) /
         std::log(static_cast<double>(big_n) / static_cast<double>(small_n));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_scaling [--smoke]\n");
      return 2;
    }
  }
  const std::vector<int> sizes = smoke ? std::vector<int>{8, 64}
                                       : std::vector<int>{8, 64, 256, 1024};
  std::printf("barrier/detection scaling sweep: %zu size(s), fanout %d, "
              "%d epochs per run\n\n",
              sizes.size(), kTreeFanout, kExplicitBarriers + 1);

  std::vector<SizeRow> rows;
  for (int nodes : sizes) {
    SizeRow row;
    row.nodes = nodes;
    row.flat = RunOne(nodes, "flat");
    row.tree = RunOne(nodes, "tree");
    row.batch = RunOne(nodes, "tree+batch");
    row.reports_match =
        row.flat.signature == row.tree.signature && row.flat.signature == row.batch.signature;
    const uint64_t expected_races =
        static_cast<uint64_t>(nodes) * (kExplicitBarriers + 1);
    if (!row.reports_match) {
      std::fprintf(stderr,
                   "error: race reports diverge at %d nodes "
                   "(flat %zu, tree %zu, tree+batch %zu reports)\n",
                   nodes, row.flat.signature.size(), row.tree.signature.size(),
                   row.batch.signature.size());
      return 1;
    }
    if (row.flat.races != expected_races) {
      std::fprintf(stderr, "error: expected %llu W/W races at %d nodes, got %llu\n",
                   static_cast<unsigned long long>(expected_races), nodes,
                   static_cast<unsigned long long>(row.flat.races));
      return 1;
    }
    std::printf("  %4d nodes: %llu races, reports identical across modes "
                "(flat %.2fs, tree %.2fs, tree+batch %.2fs wall)\n",
                nodes, static_cast<unsigned long long>(row.flat.races), row.flat.wall_s,
                row.tree.wall_s, row.batch.wall_s);
    rows.push_back(std::move(row));
  }

  TablePrinter table({"Nodes", "Mode", "Detect ms/ep", "Wire MB/ep", "Sim ms", "Intern hits"});
  for (const SizeRow& row : rows) {
    for (const ModeResult* m : {&row.flat, &row.tree, &row.batch}) {
      table.AddRow({std::to_string(row.nodes), m->mode,
                    TablePrinter::Fixed(m->detect_ns_per_epoch / 1e6, 3),
                    TablePrinter::Fixed(m->wire_bytes_per_epoch / 1e6, 3),
                    TablePrinter::Fixed(m->sim_ms, 1), std::to_string(m->intern_hits)});
    }
  }
  std::printf("\n");
  table.Print();

  bool subquadratic = true;
  for (size_t i = 1; i < rows.size(); ++i) {
    const SizeRow& a = rows[i - 1];
    const SizeRow& b = rows[i];
    const double detect_exp =
        Exponent(a.tree.detect_ns_per_epoch, b.tree.detect_ns_per_epoch, a.nodes, b.nodes);
    const double wire_exp =
        Exponent(a.tree.wire_bytes_per_epoch, b.tree.wire_bytes_per_epoch, a.nodes, b.nodes);
    std::printf("\n%d -> %d nodes: tree detect-time exponent %.2f, "
                "tree wire-bytes exponent %.2f (bar: < 2)",
                a.nodes, b.nodes, detect_exp, wire_exp);
    if (detect_exp >= 2.0 || wire_exp >= 2.0) {
      subquadratic = false;
    }
  }
  std::printf("\n");
  if (!subquadratic) {
    std::fprintf(stderr, "error: tree scaling curve is not sub-quadratic\n");
    return 1;
  }

  if (!WriteScalingJson("BENCH_scaling.json", rows)) {
    std::fprintf(stderr, "error: cannot write BENCH_scaling.json\n");
    return 1;
  }
  std::printf("wrote BENCH_scaling.json\n");
  return 0;
}
